package kvstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/types"
)

// Engine names accepted by Config.Engine.
const (
	// EngineMemory is the default in-process map backend; nothing persists.
	EngineMemory = "memory"
	// EngineDisklog is the log-structured disk backend; each node's
	// segments live under Config.Dir/node-N and survive restarts.
	EngineDisklog = "disklog"
	// EngineLSM is the log-structured merge-tree disk backend (WAL +
	// memtable + bloom-filtered SSTables); each node's tree lives under
	// Config.Dir/node-N and survives restarts. All nodes of one cluster
	// share a block cache, so the cache budget is per cluster, not per
	// node.
	EngineLSM = "lsm"
	// EngineRemote speaks the engine wire protocol to one storage daemon
	// (cmd/rstore-node) per entry of Config.NodeAddrs: a real cluster
	// instead of the in-process simulator.
	EngineRemote = "remote"
)

// Config configures a cluster.
type Config struct {
	// Nodes is the cluster size. Defaults to 1.
	Nodes int
	// ReplicationFactor is the number of replicas per key. Defaults to 1,
	// capped at Nodes.
	ReplicationFactor int
	// ReadBalance spreads multi-get reads across live replicas (token-aware
	// round-robin, like Cassandra drivers) instead of always reading the
	// primary. With ReplicationFactor > 1 this shortens the per-node serial
	// queue that bounds batch retrieval — the replication effect the
	// paper's conclusion flags for future study.
	ReadBalance bool
	// DisableReadBatching forces MultiGet through the per-key read path
	// (one point get per key per replica) instead of one batched request
	// per node. The batched path is strictly better on a wire transport;
	// the knob exists so benchmarks can measure the difference against the
	// same cluster.
	DisableReadBatching bool
	// Cost is the latency model; zero value disables simulated timing.
	Cost CostModel
	// Engine selects the per-node storage backend: EngineMemory (the
	// default), EngineDisklog, EngineLSM, or EngineRemote.
	Engine string
	// Dir is the data directory for disk-backed engines; node i stores its
	// data under Dir/node-i. Required when Engine is EngineDisklog or
	// EngineLSM.
	Dir string
	// NodeAddrs lists one daemon address (host:port) per node for
	// EngineRemote, in node-id order. The address list is the cluster
	// shape: Nodes defaults to len(NodeAddrs) and must match it when set,
	// because keys hash onto nodes by position on the ring.
	NodeAddrs []string
	// Remote tunes the wire clients of EngineRemote (pooling, retries,
	// timeouts); the zero value gives defaults.
	Remote remote.Options
	// Repair tunes replication repair — read repair, hinted handoff, and
	// tombstone GC (see repair.go). The zero value enables repair with
	// defaults whenever ReplicationFactor > 1.
	Repair RepairOptions
	// NewBackend, when set, overrides Engine/Dir with a custom backend
	// factory (tests, out-of-tree engines).
	NewBackend func(nodeID int) (engine.Backend, error)
}

// transportFactory resolves the per-node transport constructor.
func (cfg Config) transportFactory() (func(int) (transport, error), error) {
	local := func(mk func(id int) (engine.Backend, error)) func(int) (transport, error) {
		return func(id int) (transport, error) {
			be, err := mk(id)
			if err != nil {
				return nil, err
			}
			return newLocalTransport(be), nil
		}
	}
	if cfg.NewBackend != nil {
		return local(cfg.NewBackend), nil
	}
	switch cfg.Engine {
	case "", EngineMemory:
		return local(func(int) (engine.Backend, error) { return memory.New(), nil }), nil
	case EngineDisklog:
		if cfg.Dir == "" {
			return nil, fmt.Errorf("kvstore: engine %q needs Config.Dir", cfg.Engine)
		}
		return local(func(id int) (engine.Backend, error) {
			return disklog.Open(filepath.Join(cfg.Dir, fmt.Sprintf("node-%d", id)), disklog.Options{})
		}), nil
	case EngineLSM:
		if cfg.Dir == "" {
			return nil, fmt.Errorf("kvstore: engine %q needs Config.Dir", cfg.Engine)
		}
		// One cache for the whole cluster: hot blocks compete for a single
		// budget instead of N private ones sized blind to each other.
		cache := lsm.NewBlockCache(0)
		return local(func(id int) (engine.Backend, error) {
			return lsm.Open(filepath.Join(cfg.Dir, fmt.Sprintf("node-%d", id)), lsm.Options{Cache: cache})
		}), nil
	case EngineRemote:
		if len(cfg.NodeAddrs) == 0 {
			return nil, fmt.Errorf("kvstore: engine %q needs Config.NodeAddrs", cfg.Engine)
		}
		return func(id int) (transport, error) {
			c, err := remote.Dial(cfg.NodeAddrs[id], cfg.Remote)
			if err != nil {
				return nil, err
			}
			return &remoteTransport{c: c}, nil
		}, nil
	default:
		return nil, fmt.Errorf("kvstore: unknown engine %q (want %q, %q, %q, or %q)",
			cfg.Engine, EngineMemory, EngineDisklog, EngineLSM, EngineRemote)
	}
}

// Entry is one key/value pair of a batched write.
type Entry = engine.Entry

// geometryFile records the cluster shape a disk-backed data directory was
// created with, plus the stored-value format. Keys hash onto nodes by the
// ring, so reopening a directory with a different node count would look up
// keys on the wrong nodes and silently present a partial (or empty) store;
// refuse instead. The format tag exists because raw (pre-LWW) values would
// not fail cleanly through unenvelope — a raw value starting with a 0x00
// or 0x01 byte would be silently misparsed — so a directory without the
// current tag must be refused outright, not read. The replication factor
// is not pinned: the primary replica stays first under any rf, so reads
// keep finding their data.
const (
	geometryFile = "GEOMETRY"
	// storedFormat names the on-backend value encoding; bump when it
	// changes incompatibly. "lww1" is the envelope of lww.go.
	storedFormat = "lww1"
)

func checkGeometry(dir string, nodes int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	path := filepath.Join(dir, geometryFile)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return writeGeometry(dir, path, nodes)
	}
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	var got int
	var format string
	if _, err := fmt.Sscanf(string(b), "nodes=%d format=%s", &got, &format); err != nil {
		// A bare "nodes=N" line is a directory written before value
		// formats existed (raw values, unreadable now).
		if _, err := fmt.Sscanf(string(b), "nodes=%d", &got); err == nil {
			return fmt.Errorf("kvstore: data directory %s was written with a pre-%s value format and cannot be read; recreate it", dir, storedFormat)
		}
		return fmt.Errorf("kvstore: corrupt geometry file %s: %q", path, b)
	}
	if format != storedFormat {
		return fmt.Errorf("kvstore: data directory %s uses value format %q, this build reads %q", dir, format, storedFormat)
	}
	if got != nodes {
		return fmt.Errorf("kvstore: data directory %s was created with %d nodes, reopened with %d", dir, got, nodes)
	}
	return nil
}

// writeGeometry durably records the node count (file and directory entry
// both fsynced — the pin is worthless if a power failure can drop it).
func writeGeometry(dir, path string, nodes int) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	if _, err := fmt.Fprintf(f, "nodes=%d format=%s\n", nodes, storedFormat); err != nil {
		f.Close()
		return fmt.Errorf("kvstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("kvstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	return nil
}

// Store is an in-process distributed key-value store: the substrate RStore
// persists chunks, chunk maps, indexes, and delta batches into. It exposes
// only the basic get/put/delete interface the paper assumes, plus a parallel
// MultiGet (issuing point gets concurrently, exactly what RStore's query
// module does), a replica-batched BatchPut (the unit the engine's flush path
// commits in), and an administrative Scan used for index rebuilds. Each node
// delegates its data to an engine.Backend selected by Config.Engine.
type Store struct {
	cfg    Config
	ring   *ring
	nodes  []*node
	closed atomic.Bool
	lastTS atomic.Uint64 // LWW write clock (see lww.go)
	// fanout enables concurrent replica reads in lwwGet: worth a goroutine
	// per replica when each read is a network round trip (remote engine),
	// pure overhead when it is an in-process map lookup.
	fanout bool
	// repair is the replication-repair subsystem (repair.go); nil at
	// ReplicationFactor 1, where replicas cannot diverge.
	repair *repairer
	// ae is the background anti-entropy loop (antientropy.go); nil unless
	// RepairOptions.AntiEntropyInterval is set and ReplicationFactor > 1.
	ae *antiEntropy

	// Virtual clock and counters (atomics; Store is safe for concurrent
	// use).
	simClock  atomic.Int64 // accumulated simulated time, ns
	reqCount  atomic.Int64
	bytesRead atomic.Int64
	bytesPut  atomic.Int64
}

// Open creates a cluster, opening one backend (or wire client) per node.
// ctx bounds the open itself — the remote geometry probe and durable-hint
// recovery round-trips — not the lifetime of the returned Store.
func Open(ctx context.Context, cfg Config) (*Store, error) {
	if cfg.Engine == EngineRemote && cfg.NewBackend == nil {
		// The address list defines the cluster shape.
		if cfg.Nodes <= 0 {
			cfg.Nodes = len(cfg.NodeAddrs)
		}
		if cfg.Nodes != len(cfg.NodeAddrs) {
			return nil, fmt.Errorf("kvstore: Nodes=%d but %d node addresses", cfg.Nodes, len(cfg.NodeAddrs))
		}
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	factory, err := cfg.transportFactory()
	if err != nil {
		return nil, err
	}
	if cfg.NewBackend == nil && (cfg.Engine == EngineDisklog || cfg.Engine == EngineLSM) {
		if err := checkGeometry(cfg.Dir, cfg.Nodes); err != nil {
			return nil, err
		}
	}
	s := &Store{cfg: cfg, ring: newRing(cfg.Nodes), fanout: cfg.Engine == EngineRemote && cfg.NewBackend == nil}
	for i := 0; i < cfg.Nodes; i++ {
		tr, err := factory(i)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("kvstore: open node %d: %w", i, err)
		}
		s.nodes = append(s.nodes, newNode(i, tr))
	}
	if cfg.Engine == EngineRemote && cfg.NewBackend == nil {
		if err := s.pinRemoteGeometry(ctx); err != nil {
			s.Close()
			return nil, err
		}
	}
	if cfg.ReplicationFactor > 1 {
		s.repair = newRepairer(s, cfg.Repair)
		// Resume draining hints a previous client parked (durable in the
		// !hints tables); unreachable nodes are simply skipped.
		s.repair.recoverHints(ctx)
		if cfg.Repair.AntiEntropyInterval > 0 {
			// Started after the repairer: the loop routes every repair it
			// finds through the repairer's workers and lifecycle context.
			s.ae = newAntiEntropy(s, cfg.Repair)
			s.ae.start()
		}
	}
	// A remote node recovering from probation (breaker closing) kicks hint
	// drain so writes parked while it was down replay promptly — the wire
	// counterpart of SetNodeUp's nudge. Wired last so the callback never
	// observes a half-built Store.
	for _, n := range s.nodes {
		if rt, ok := n.tr.(*remoteTransport); ok {
			rt.c.SetStateListener(func(up bool) {
				if up && s.repair != nil {
					s.repair.kickDrain()
				}
			})
		}
	}
	return s, nil
}

// clusterTable is a kvstore-private table holding per-daemon identity
// records. It is written and read directly per node (bypassing the ring)
// and excluded from Dump, so snapshots stay portable across cluster
// shapes.
const (
	clusterTable = "!cluster"
	nodeIDKey    = "node-id"
)

// pinRemoteGeometry is the remote counterpart of the disklog GEOMETRY
// file: each daemon records which ring position (and cluster size) it
// serves plus the cluster's replication factor, so reopening the same
// daemons with the address list reordered or resized — or with a different
// -rf, which would silently under- (or over-) replicate every new write —
// is refused instead of accepted. Unreachable daemons are skipped —
// opening with a node down is allowed, and a mismatched daemon will still
// be caught on any open that can reach it. Pins written before the
// replication factor was recorded are upgraded in place when everything
// they do pin matches.
func (s *Store) pinRemoteGeometry(ctx context.Context) error {
	for _, n := range s.nodes {
		want := fmt.Sprintf("%d of %d rf=%d format=%s", n.id, len(s.nodes), s.cfg.ReplicationFactor, storedFormat)
		legacy := fmt.Sprintf("%d of %d format=%s", n.id, len(s.nodes), storedFormat)
		raw, ok, err := n.get(ctx, clusterTable, nodeIDKey)
		if isUnavailable(err) {
			continue
		}
		if err != nil {
			return fmt.Errorf("kvstore: node %d geometry probe: %w", n.id, err)
		}
		writePin := !ok
		if ok {
			payload, _, tomb, err := unenvelope(raw)
			if err != nil {
				return fmt.Errorf("kvstore: node %d geometry probe: %w", n.id, err)
			}
			switch {
			case tomb:
				writePin = true
			case string(payload) == want:
				continue
			case string(payload) == legacy:
				// Pre-rf pin with matching position/shape/format: adopt this
				// open's replication factor as the pinned one.
				writePin = true
			default:
				var pid, pn, prf int
				var pfmt string
				if _, err := fmt.Sscanf(string(payload), "%d of %d rf=%d format=%s", &pid, &pn, &prf, &pfmt); err == nil &&
					pid == n.id && pn == len(s.nodes) && pfmt == storedFormat && prf != s.cfg.ReplicationFactor {
					return fmt.Errorf("kvstore: cluster is pinned at replication factor %d but was opened with %d: new writes would be %s-replicated (wipe the daemons or reopen with -rf %d)",
						prf, s.cfg.ReplicationFactor, underOver(s.cfg.ReplicationFactor < prf), prf)
				}
				return fmt.Errorf("kvstore: daemon %s is pinned as node %q but the address list opens it as %q: node addresses reordered or resized",
					s.cfg.NodeAddrs[n.id], payload, want)
			}
		}
		if writePin {
			env := envelope(envValue, s.nextTS(), []byte(want))
			if err := n.put(ctx, clusterTable, nodeIDKey, env); err != nil && !isUnavailable(err) {
				return fmt.Errorf("kvstore: node %d geometry pin: %w", n.id, err)
			}
		}
	}
	return nil
}

func underOver(under bool) string {
	if under {
		return "under"
	}
	return "over"
}

// Close closes every node's backend, flushing disk-backed engines and
// releasing remote connections. All nodes are closed even when some fail;
// the per-node errors are aggregated. Closing twice is a no-op — backends
// are not re-touched.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.ae != nil {
		// Stop the anti-entropy loop before the repairer it enqueues into.
		s.ae.close()
	}
	if s.repair != nil {
		// Stop repair workers before their nodes' backends go away.
		s.repair.close()
	}
	var errs []error
	for _, n := range s.nodes {
		if err := n.tr.close(); err != nil {
			errs = append(errs, fmt.Errorf("kvstore: close node %d: %w", n.id, err))
		}
	}
	return errors.Join(errs...)
}

// Nodes returns the cluster size.
func (s *Store) Nodes() int { return s.cfg.Nodes }

// Cost returns the configured cost model.
func (s *Store) Cost() CostModel { return s.cfg.Cost }

// Put stores value under (table, key) on all replicas. Replicas that are
// down are routed around, and — with repair enabled — the missed write is
// parked as a hint on a replica that took it, to be replayed when the
// node returns (repair.go).
func (s *Store) Put(ctx context.Context, table, key string, value []byte) error {
	replicas := s.ring.replicas(key, s.cfg.ReplicationFactor)
	env := envelope(envValue, s.nextTS(), value)
	park, missed, err := s.replicatedPut(ctx, replicas, table, key, env)
	if err != nil {
		return fmt.Errorf("kvstore: put %s/%s: %w", table, key, err)
	}
	if park < 0 {
		return allDownErr(ctx, "kvstore: put %s/%s: all replicas down", table, key)
	}
	if s.repair != nil && len(missed) > 0 {
		specs := make([]hintSpec, len(missed))
		for i, n := range missed {
			specs[i] = hintSpec{target: n, table: table, key: key, env: env}
		}
		s.repair.addHints(ctx, park, specs)
	}
	s.bytesPut.Add(int64(len(value)))
	s.simClock.Add(int64(s.cfg.Cost.requestCost(len(value))))
	s.reqCount.Add(1)
	return nil
}

// replicatedPut writes one envelope to every replica, routing around down
// nodes. The replica writes issue concurrently (one goroutine per extra
// replica) so a dead node's dial-retry latency does not stack in front of
// the live ones. It reports the acknowledging node earliest in replica
// order (-1 if none — the caller renders the all-down error; the replica
// order makes the park choice deterministic regardless of completion
// order) and the nodes that missed the write; hard engine errors abort.
func (s *Store) replicatedPut(ctx context.Context, replicas []int, table, key string, env []byte) (park int, missed []int, err error) {
	errs := make([]error, len(replicas))
	if len(replicas) > 1 {
		var wg sync.WaitGroup
		for j, n := range replicas {
			wg.Add(1)
			go func(j, n int) {
				defer wg.Done()
				errs[j] = s.nodes[n].put(ctx, table, key, env)
			}(j, n)
		}
		wg.Wait()
	} else {
		errs[0] = s.nodes[replicas[0]].put(ctx, table, key, env)
	}
	park = -1
	for j, n := range replicas {
		switch err := errs[j]; {
		case err == nil:
			if park < 0 {
				park = n
			}
		case isUnavailable(err):
			missed = append(missed, n)
		default:
			return -1, nil, err
		}
	}
	return park, missed, nil
}

// BatchPut stores many values in one table, grouping the writes per replica
// node and committing each group through the node's backend in a single
// call — one durability sync per node per batch instead of one per key.
// Like Put, it fails only if some entry has no live replica or a backend
// errors; simulated timing follows the MultiGet batch model (per-node serial
// service, parallel client lanes).
func (s *Store) BatchPut(ctx context.Context, table string, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	perNode := make(map[int][]int)
	replicasOf := make([][]int, len(entries))
	for i, e := range entries {
		replicasOf[i] = s.ring.replicas(e.Key, s.cfg.ReplicationFactor)
		for _, n := range replicasOf[i] {
			perNode[n] = append(perNode[n], i)
		}
	}
	// One envelope per entry (one timestamp per batch), shared across the
	// replica groups.
	ts := s.nextTS()
	envs := make([][]byte, len(entries))
	for i, e := range entries {
		envs[i] = envelope(envValue, ts, e.Value)
	}
	// The per-node groups issue concurrently (bounded by the node count:
	// one goroutine per group), so a dead node's dial-retry latency does
	// not serialize in front of the live groups. Hard errors are reported
	// in node order for determinism.
	nids := make([]int, 0, len(perNode))
	for nid := range perNode {
		nids = append(nids, nid)
	}
	sort.Ints(nids)
	groupErrs := make([]error, len(nids))
	var wg sync.WaitGroup
	for j, nid := range nids {
		idxs := perNode[nid]
		group := make([]engine.Entry, len(idxs))
		for k, i := range idxs {
			group[k] = engine.Entry{Key: entries[i].Key, Value: envs[i]}
		}
		wg.Add(1)
		go func(j, nid int, group []engine.Entry) {
			defer wg.Done()
			groupErrs[j] = s.nodes[nid].batchPut(ctx, table, group)
		}(j, nid, group)
	}
	wg.Wait()
	nodeErr := make(map[int]error, len(nids))
	var missedByNode map[int][]int // down node → entry indexes it missed
	for j, nid := range nids {
		switch err := groupErrs[j]; {
		case err == nil:
			nodeErr[nid] = nil
		case isUnavailable(err):
			// Routed around; entries survive on other replicas.
			nodeErr[nid] = err
			if missedByNode == nil {
				missedByNode = make(map[int][]int)
			}
			missedByNode[nid] = perNode[nid]
		default:
			return fmt.Errorf("kvstore: batchput %s: node %d: %w", table, nid, err)
		}
	}
	// committed[i] = acking node earliest in entry i's replica order, or -1
	// (deterministic park choice, matching replicatedPut).
	committed := make([]int, len(entries))
	var bytes int64
	for i, e := range entries {
		committed[i] = -1
		for _, n := range replicasOf[i] {
			if nodeErr[n] == nil {
				committed[i] = n
				break
			}
		}
		if committed[i] < 0 {
			return allDownErr(ctx, "kvstore: batchput %s/%s: all replicas down", table, e.Key)
		}
		bytes += int64(len(e.Value))
	}
	if s.repair != nil && len(missedByNode) > 0 {
		// Park the missed writes, batched per parking node (the first
		// replica that acknowledged each entry) so the hint log costs one
		// durable batch per park, not one per key.
		perPark := make(map[int][]hintSpec)
		for nid, idxs := range missedByNode {
			for _, i := range idxs {
				park := committed[i]
				perPark[park] = append(perPark[park], hintSpec{
					target: nid, table: table, key: entries[i].Key, env: envs[i],
				})
			}
		}
		for park, specs := range perPark {
			s.repair.addHints(ctx, park, specs)
		}
	}

	// Simulated timing: per-primary serial service, client-side lanes
	// (replica fan-out is free, matching Put's accounting).
	perPrimary := make(map[int][]int)
	for i, e := range entries {
		p := replicasOf[i][0]
		perPrimary[p] = append(perPrimary[p], len(e.Value))
	}
	s.bytesPut.Add(bytes)
	s.reqCount.Add(int64(len(entries)))
	s.simClock.Add(int64(s.cfg.Cost.batchElapsed(perPrimary)))
	return nil
}

// Get retrieves the value under (table, key). It returns types.ErrNotFound
// if no live replica has the key (or the newest version is a tombstone),
// and an error when every replica is down.
func (s *Store) Get(ctx context.Context, table, key string) ([]byte, error) {
	v, ok, anyUp, err := s.lwwGet(ctx, table, key)
	if err != nil {
		return nil, fmt.Errorf("kvstore: get %s/%s: %w", table, key, err)
	}
	if !anyUp {
		return nil, allDownErr(ctx, "kvstore: get %s/%s: all replicas down", table, key)
	}
	if ok {
		s.account(1, len(v))
		return v, nil
	}
	s.account(1, 0)
	return nil, fmt.Errorf("%w: %s/%s", types.ErrNotFound, table, key)
}

// lwwGet reads (table, key) from every live replica and resolves the
// newest version by write timestamp — a node that restarted stale (it was
// down while peers accepted overwrites or deletes) is outvoted instead of
// believed; see lww.go. Timestamp ties resolve deterministically
// (tombstone first, then lowest node id — lwwNewer), so every reader and
// every repair picks the same winner. On remote clusters the replicas are
// consulted concurrently so one dead node's dial-retry latency does not
// stack in front of the others. Cost accounting charges one request per
// key regardless: replica consultation is modeled as free digest reads,
// mirroring how Put charges once despite its replica fan-out. It reports
// whether any replica was reachable; err is a hard engine error.
//
// Divergence observed here is also queued for read repair: live replicas
// that returned an older version (or missed a live key, or hold a value a
// tombstone deleted) get the winning envelope written back asynchronously.
func (s *Store) lwwGet(ctx context.Context, table, key string) (v []byte, ok, anyUp bool, err error) {
	replicas := s.ring.replicas(key, s.cfg.ReplicationFactor)
	results := make([]readResult, len(replicas))
	if s.fanout && len(replicas) > 1 {
		var wg sync.WaitGroup
		for j, n := range replicas {
			wg.Add(1)
			go func(j, n int) {
				defer wg.Done()
				r := &results[j]
				r.raw, r.present, r.err = s.nodes[n].get(ctx, table, key)
			}(j, n)
		}
		wg.Wait()
	} else {
		for j, n := range replicas {
			r := &results[j]
			r.raw, r.present, r.err = s.nodes[n].get(ctx, table, key)
		}
	}
	return s.resolveRead(table, key, replicas, results)
}

// readResult is one replica's answer for one key: a raw envelope (or its
// absence), or the error the attempt returned. ts and tomb are filled in
// by resolveRead.
type readResult struct {
	raw     []byte
	present bool
	err     error
	ts      uint64
	tomb    bool
}

// resolveRead LWW-merges one key's per-replica read results: the newest
// version wins (ties resolved by lwwNewer), divergent live replicas are
// queued for read repair, and fully-agreed expired tombstones are handed
// to TTL collection. It is the shared resolution step of lwwGet and the
// batched MultiGet path, so both observe divergence identically. results
// must align with replicas (results[j] answers replicas[j]).
func (s *Store) resolveRead(table, key string, replicas []int, results []readResult) (v []byte, ok, anyUp bool, err error) {
	var best []byte
	var bestTS uint64
	var bestNode int
	found, tombstone := false, false
	for i := range results {
		r := &results[i]
		if isUnavailable(r.err) {
			continue
		}
		if r.err != nil {
			return nil, false, true, r.err
		}
		anyUp = true
		if !r.present {
			continue
		}
		payload, ts, tomb, err := unenvelope(r.raw)
		if err != nil {
			return nil, false, true, err
		}
		r.ts, r.tomb = ts, tomb
		if !found || lwwNewer(ts, tomb, replicas[i], bestTS, tombstone, bestNode) {
			found, bestTS, tombstone, bestNode, best = true, ts, tomb, replicas[i], payload
		}
	}

	if s.repair != nil && found {
		// complete = every replica was reachable and agrees with the
		// winner. For a tombstone winner a replica that is missing the key
		// also agrees in effect — it holds nothing the tombstone protects
		// against — so it neither blocks TTL collection nor gets the
		// tombstone re-created (which would undo GC).
		complete := true
		var losers []int
		for i := range results {
			r := &results[i]
			if r.err != nil {
				complete = false
				continue
			}
			if r.present && r.ts == bestTS && r.tomb == tombstone {
				continue // carries the winning version
			}
			if !r.present && tombstone {
				continue
			}
			complete = false
			losers = append(losers, replicas[i])
		}
		if len(losers) > 0 && !s.repair.opts.DisableReadRepair {
			flag := byte(envValue)
			if tombstone {
				flag = envTombstone
			}
			// envelope() builds a fresh buffer, so the queued task owns its
			// bytes (best may alias a result buffer).
			s.repair.enqueue(repairTask{
				table: table, key: key,
				env: envelope(flag, bestTS, best), ts: bestTS, tomb: tombstone,
				targets: losers,
			})
		}
		if tombstone && complete {
			s.repair.observeExpiredTombstone(table, key, bestTS, replicas)
		}
	}

	if !found || tombstone {
		return nil, false, anyUp, nil
	}
	return best, true, anyUp, nil
}

// Delete removes (table, key) from all replicas by writing a tombstone:
// a replica that misses the delete (down at the time) is outvoted by the
// tombstone's newer timestamp when it comes back, instead of resurrecting
// the value — and, with repair enabled, receives the tombstone by hint
// replay. Once every replica has acknowledged the tombstone (now, or
// later through hints and read repair), it is physically collected
// (repair.go). Deleting a missing key is not an error, but — matching
// Put — deleting while every replica is down is: the tombstone took hold
// nowhere.
func (s *Store) Delete(ctx context.Context, table, key string) error {
	replicas := s.ring.replicas(key, s.cfg.ReplicationFactor)
	ts := s.nextTS()
	env := envelope(envTombstone, ts, nil)
	park, missed, err := s.replicatedPut(ctx, replicas, table, key, env)
	if err != nil {
		return fmt.Errorf("kvstore: delete %s/%s: %w", table, key, err)
	}
	if park < 0 {
		return allDownErr(ctx, "kvstore: delete %s/%s: all replicas down", table, key)
	}
	if s.repair != nil {
		// Register the ack wait BEFORE parking hints: a hint replayed the
		// instant it is parked (the target flapped back up mid-drain) must
		// find the wait registered, or its acknowledgment would be dropped
		// and the tombstone never collected.
		pending := make(map[int]bool, len(missed))
		for _, n := range missed {
			pending[n] = true
		}
		s.repair.trackTombstone(table, key, ts, pending, replicas)
		if len(missed) > 0 {
			specs := make([]hintSpec, len(missed))
			for i, n := range missed {
				specs[i] = hintSpec{target: n, table: table, key: key, env: env}
			}
			s.repair.addHints(ctx, park, specs)
		}
	}
	s.account(1, 0)
	return nil
}

// MultiGetResult reports the outcome of a parallel multi-key fetch.
type MultiGetResult struct {
	// Values holds one entry per requested key, in request order; missing
	// keys yield nil entries.
	Values [][]byte
	// Missing lists the indexes of keys that were not found.
	Missing []int
	// Requests is the number of point requests issued.
	Requests int
	// BytesRead is the total response volume.
	BytesRead int64
	// Elapsed is the simulated wall time of the batch under the cost model
	// (parallel lanes, per-node serialization).
	Elapsed time.Duration
}

// MultiGet fetches many keys from one table — the access pattern of
// RStore's query processing module. Keys are grouped by replica node and
// each node's group is read in one batched request (a single wire round
// trip per node on remote clusters), issued in parallel; each key's
// replica answers are then LWW-merged exactly like a point Get. Keys
// whose every replica batch came back unavailable fall back to per-key
// reads, whose retry schedule re-discovers liveness. Missing keys are
// reported, not errors, because the projections RStore consults are lossy
// (§2.4).
func (s *Store) MultiGet(ctx context.Context, table string, keys []string) (*MultiGetResult, error) {
	res := &MultiGetResult{Values: make([][]byte, len(keys))}
	if len(keys) == 0 {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("kvstore: multiget %s: %w", table, err)
	}

	// Group request indexes by serving replica: the primary by default, or
	// the least-loaded live replica when read balancing is on (tracked with
	// O(1) per-replica load counters). available() is only a hint (a remote
	// node's liveness is discovered per request), so the fetch paths below
	// still fall back across replicas. The serving grouping drives the
	// simulated batch cost; the physical reads consult every replica.
	rf := s.cfg.ReplicationFactor
	replicasOf := make([][]int, len(keys))
	load := make([]int, len(s.nodes))
	byNode := make(map[int][]int)
	for i, k := range keys {
		replicasOf[i] = s.ring.replicas(k, rf)
		n := -1
		for _, r := range replicasOf[i] {
			if !s.nodes[r].isUp() {
				continue
			}
			if !s.cfg.ReadBalance {
				n = r
				break
			}
			if n == -1 || load[r] < load[n] {
				n = r
			}
		}
		if n < 0 {
			return nil, fmt.Errorf("kvstore: multiget %s: all replicas down for %q", table, k)
		}
		load[n]++
		byNode[n] = append(byNode[n], i)
	}

	var missing []int
	var err error
	if s.cfg.DisableReadBatching {
		missing, err = s.multiGetPerKey(ctx, table, keys, byNode, res)
	} else {
		missing, err = s.multiGetBatched(ctx, table, keys, replicasOf, res)
	}
	if err != nil {
		return nil, err
	}
	res.Missing = missing
	sort.Ints(res.Missing)

	// Simulated timing: per-node serial service, client-side lanes.
	perNode := make(map[int][]int, len(byNode))
	for nid, idxs := range byNode {
		sizes := make([]int, len(idxs))
		for j, i := range idxs {
			sizes[j] = len(res.Values[i])
		}
		perNode[nid] = sizes
	}
	res.Requests = len(keys)
	for _, v := range res.Values {
		res.BytesRead += int64(len(v))
	}
	res.Elapsed = s.cfg.Cost.batchElapsed(perNode)
	s.reqCount.Add(int64(res.Requests))
	s.bytesRead.Add(res.BytesRead)
	s.simClock.Add(int64(res.Elapsed))
	return res, nil
}

// multiGetBatched issues one batched read per node covering every key the
// node replicates, in parallel, then LWW-merges each key's answers across
// its replicas' batches — the same resolution (and read-repair
// observation) as the per-key path, at one wire round trip per node
// instead of one per key per replica. A node whose batch failed as
// unavailable contributes no answers (its keys merge from the replicas
// that did answer, mirroring how lwwGet skips unavailable replicas); keys
// with no answering replica at all are retried through per-key lwwGet,
// whose per-operation retries re-discover liveness. Hard errors abort.
func (s *Store) multiGetBatched(ctx context.Context, table string, keys []string, replicasOf [][]int, res *MultiGetResult) (missing []int, err error) {
	// slot records where key i landed in each replica's batch, so its
	// answers can be collected without searching.
	type slot struct{ node, off int }
	perNode := make(map[int][]int)
	slots := make([][]slot, len(keys))
	for i := range keys {
		for _, r := range replicasOf[i] {
			slots[i] = append(slots[i], slot{r, len(perNode[r])})
			perNode[r] = append(perNode[r], i)
		}
	}

	type batch struct {
		vals    [][]byte
		present []bool
		err     error
	}
	batches := make(map[int]*batch, len(perNode))
	var wg sync.WaitGroup
	for nid, idxs := range perNode {
		b := &batch{}
		batches[nid] = b
		ks := make([]string, len(idxs))
		for j, i := range idxs {
			ks[j] = keys[i]
		}
		wg.Add(1)
		go func(nid int, ks []string, b *batch) {
			defer wg.Done()
			b.vals, b.present, b.err = s.nodes[nid].multiGet(ctx, table, ks)
		}(nid, ks, b)
	}
	wg.Wait()
	for nid, b := range batches {
		if b.err != nil && !isUnavailable(b.err) {
			return nil, fmt.Errorf("kvstore: multiget %s: node %d: %w", table, nid, b.err)
		}
	}

	var fallback []int
	for i := range keys {
		results := make([]readResult, len(slots[i]))
		answered := false
		for j, sl := range slots[i] {
			b := batches[sl.node]
			if b.err != nil {
				results[j].err = b.err
				continue
			}
			answered = true
			results[j].raw = b.vals[sl.off]
			results[j].present = b.present[sl.off]
		}
		if !answered {
			fallback = append(fallback, i)
			continue
		}
		v, ok, _, err := s.resolveRead(table, keys[i], replicasOf[i], results)
		if err != nil {
			return nil, fmt.Errorf("kvstore: multiget %s/%s: %w", table, keys[i], err)
		}
		if ok {
			res.Values[i] = v
		} else {
			missing = append(missing, i)
		}
	}

	for _, i := range fallback {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kvstore: multiget %s: %w", table, err)
		}
		v, ok, anyUp, err := s.lwwGet(ctx, table, keys[i])
		switch {
		case err != nil:
			return nil, fmt.Errorf("kvstore: multiget %s/%s: %w", table, keys[i], err)
		case !anyUp:
			return nil, allDownErr(ctx, "kvstore: multiget %s/%s: all replicas down", table, keys[i])
		case ok:
			res.Values[i] = v
		default:
			missing = append(missing, i)
		}
	}
	return missing, nil
}

// multiGetPerKey is the pre-batching read path: per-node lanes issuing
// one replicated point read per key. Kept behind Config.DisableReadBatching
// so benchmarks can measure the batching win against the same cluster.
func (s *Store) multiGetPerKey(ctx context.Context, table string, keys []string, byNode map[int][]int, res *MultiGetResult) ([]int, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex // guards missing and firstErr
	var missing []int
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// One lane per serving node; the reads inside consult all replicas.
	for _, idxs := range byNode {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				// A dead context stops the lane before the next point read.
				if err := ctx.Err(); err != nil {
					fail(fmt.Errorf("kvstore: multiget %s: %w", table, err))
					return
				}
				v, ok, anyUp, err := s.lwwGet(ctx, table, keys[i])
				switch {
				case err != nil:
					fail(fmt.Errorf("kvstore: multiget %s/%s: %w", table, keys[i], err))
					return
				case !anyUp:
					fail(allDownErr(ctx, "kvstore: multiget %s/%s: all replicas down", table, keys[i]))
					return
				case ok:
					res.Values[i] = v
				default:
					mu.Lock()
					missing = append(missing, i)
					mu.Unlock()
				}
			}
		}(idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return missing, nil
}

// Scan visits every live key/value of a table exactly once, in unspecified
// order, skipping tombstones; values are copied before fn sees them.
// Backend failures surface as the returned error.
//
// Scan feeds recovery (core's Load), snapshots, and index rebuilds, so it
// must not silently present a partial table: if enough nodes are
// unreachable that some key's entire replica set may have been
// unobservable (at ReplicationFactor 1, any down node), Scan errors
// instead of returning a truncated view — a Load over a truncated view
// would re-issue version ids and overwrite acknowledged commits. With
// fewer failures the sweep is complete and proceeds.
//
// Without replication each node streams its own keys. With replication the
// primary-owned restriction would be wrong twice over — a key's primary may
// be down (its replicas still hold the data) or freshly restarted and stale
// (holding an old version) — so Scan sweeps every reachable node and keeps
// the newest version of each key by LWW timestamp.
func (s *Store) Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	if s.cfg.ReplicationFactor <= 1 {
		return s.scanUnreplicated(ctx, table, fn)
	}

	// Sweep all reachable replicas, retaining a copy of each key's newest
	// version (scan values alias backend buffers, so the winner must be
	// copied; losers are overwritten in place; tombstone winners buffer
	// only their timestamp). Holding the winners in memory is deliberate:
	// the alternative — resolve timestamps first, then re-read each winner
	// — costs one network round trip per key, and Scan's consumers (Load,
	// Dump, index rebuilds) are whole-table operations that buffer
	// comparable state themselves. A streaming merge-scan would need
	// ordered per-node iteration, which engine.Backend does not promise.
	//
	// The sweep doubles as a whole-table divergence detector: each winner
	// tracks (in two bitmasks, clusters ≤ 64 nodes) which nodes reported
	// it and which reported the winning version, so stale or missing
	// replicas can be queued for read repair after the sweep.
	detect := s.repair != nil && len(s.nodes) <= 64
	var upMask uint64
	best := make(map[string]*scanWinner)
	unavailable := 0
	var envErr error
	for _, n := range s.nodes {
		err := n.scan(ctx, table, func(k string, v []byte) bool {
			payload, ts, tomb, err := unenvelope(v)
			if err != nil {
				envErr = err
				return false
			}
			w, ok := best[k]
			if !ok {
				w = &scanWinner{}
				best[k] = w
			}
			if detect {
				w.reported |= 1 << n.id
			}
			if ok && !lwwNewer(ts, tomb, n.id, w.ts, w.tomb, w.node) {
				if detect && ts == w.ts && tomb == w.tomb {
					w.winners |= 1 << n.id
				}
				return true
			}
			w.ts, w.tomb, w.node = ts, tomb, n.id
			if detect {
				w.winners = 1 << n.id
			}
			w.value = append(w.value[:0], payload...)
			return true
		})
		if envErr != nil {
			return fmt.Errorf("kvstore: scan %s: %w", table, envErr)
		}
		if isUnavailable(err) {
			unavailable++
			continue
		}
		if err != nil {
			return fmt.Errorf("kvstore: scan %s: %w", table, err)
		}
		if detect {
			upMask |= 1 << n.id
		}
	}
	if unavailable >= s.cfg.ReplicationFactor {
		// Every key has ReplicationFactor distinct replicas, so with fewer
		// nodes down each key was observable on at least one; at or past
		// that threshold some key may have had no reachable replica.
		return fmt.Errorf("kvstore: scan %s: %d nodes unavailable at replication factor %d: view would be incomplete",
			table, unavailable, s.cfg.ReplicationFactor)
	}

	if detect {
		s.scanRepairs(table, best, upMask)
	}
	for k, w := range best {
		if w.tomb {
			continue
		}
		if !fn(k, w.value) {
			return nil
		}
	}
	return nil
}

// scanWinner is a replicated Scan's per-key resolution state: the newest
// observed version plus the divergence bitmasks scanRepairs consumes.
type scanWinner struct {
	ts    uint64
	tomb  bool
	node  int
	value []byte
	// winners = nodes that reported exactly the winning (ts, tomb);
	// reported = nodes that reported any version of the key.
	winners, reported uint64
}

// scanRepairs queues read repair for every key a replicated Scan found
// divergent: reachable replicas that reported a losing version or missed
// the key get the winner written back. Expired tombstones whose replicas
// all agree are handed to TTL collection. Clusters past 64 nodes skip
// detection (the masks are single words).
func (s *Store) scanRepairs(table string, best map[string]*scanWinner, upMask uint64) {
	for k, w := range best {
		replicas := s.ring.replicas(k, s.cfg.ReplicationFactor)
		complete := true
		var losers []int
		for _, n := range replicas {
			bit := uint64(1) << n
			if upMask&bit == 0 {
				complete = false
				continue // unreachable: nothing to fix now
			}
			if w.winners&bit != 0 {
				continue
			}
			if w.reported&bit == 0 && w.tomb {
				// Missing + tombstone winner: nothing to outvote, and in
				// effect in agreement (mirrors lwwGet).
				continue
			}
			complete = false
			losers = append(losers, n)
		}
		if len(losers) > 0 && !s.repair.opts.DisableReadRepair {
			flag := byte(envValue)
			if w.tomb {
				flag = envTombstone
			}
			s.repair.enqueue(repairTask{
				table: table, key: k,
				env: envelope(flag, w.ts, w.value), ts: w.ts, tomb: w.tomb,
				targets: losers,
			})
		}
		if w.tomb && complete {
			s.repair.observeExpiredTombstone(table, k, w.ts, replicas)
		}
	}
}

// scanUnreplicated streams each node's primarily-owned keys — with one
// replica per key there is nothing to reconcile, so no buffering is
// needed, but any unreachable node makes the view incomplete.
func (s *Store) scanUnreplicated(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	stop := false
	var envErr error
	for _, n := range s.nodes {
		if stop || envErr != nil {
			break
		}
		err := n.scan(ctx, table, func(k string, v []byte) bool {
			if s.ring.primary(k) != n.id {
				return true // visited via its primary owner
			}
			payload, _, tomb, err := unenvelope(v)
			if err != nil {
				envErr = err
				return false
			}
			if tomb {
				return true
			}
			cp := make([]byte, len(payload))
			copy(cp, payload)
			if !fn(k, cp) {
				stop = true
				return false
			}
			return true
		})
		if isUnavailable(err) {
			return fmt.Errorf("kvstore: scan %s: node %d unavailable with no replicas: view would be incomplete", table, n.id)
		}
		if err != nil {
			return fmt.Errorf("kvstore: scan %s: %w", table, err)
		}
	}
	if envErr != nil {
		return fmt.Errorf("kvstore: scan %s: %w", table, envErr)
	}
	return nil
}

// allDownErr renders an "all replicas down" failure. When the caller's
// context ended, the context's error is the real cause (every replica
// attempt died on it) and is kept matchable in the chain.
func allDownErr(ctx context.Context, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: %w", msg, err)
	}
	return errors.New(msg)
}

// account books a sequential operation.
func (s *Store) account(reqs, bytes int) {
	s.reqCount.Add(int64(reqs))
	s.bytesRead.Add(int64(bytes))
	s.simClock.Add(int64(s.cfg.Cost.requestCost(bytes)))
}

// ChargeScan adds client-side scan cost for n bytes to the virtual clock and
// returns the charged duration. The query module calls it when extracting
// records from retrieved chunks.
func (s *Store) ChargeScan(n int) time.Duration {
	d := s.cfg.Cost.scanCost(n)
	s.simClock.Add(int64(d))
	return d
}

// Stats is a snapshot of cluster counters. The repair fields are zero
// when replication repair is off (ReplicationFactor 1).
type Stats struct {
	Requests    int64
	BytesRead   int64
	BytesPut    int64
	SimElapsed  time.Duration
	BytesStored int64 // resident across nodes (including replicas)

	// Replication repair (repair.go). Lifetime counters are per Store
	// instance (a reopened client starts at zero, though it inherits and
	// re-counts durable hints it recovers).
	RepairWrites   int64 // winning envelopes written back to losing replicas
	RepairDropped  int64 // repair tasks dropped on a full queue
	HintsQueued    int64 // writes parked for down replicas (lifetime)
	HintsReplayed  int64 // parked writes delivered to recovered replicas
	HintsPending   int64 // parked writes currently awaiting replay
	TombstonesGCed int64 // tombstones physically collected

	// Anti-entropy (antientropy.go). All zero unless the loop is enabled
	// via RepairOptions.AntiEntropyInterval.
	AESyncs        int64 // completed replica-pair sync rounds
	AERangesDiffed int64 // unequal tree buckets drilled into
	AEKeysRepaired int64 // differing keys handed to the repair writer
	AEBytesHashed  int64 // key+value bytes digested by tree sweeps

	// Storage reclaim, summed over reachable nodes whose backend supports
	// compaction (the disklog engine, local or behind a daemon); all zero
	// on a pure memory cluster. Byte counts include record framing, so
	// DiskBytes-LiveBytes is exactly what a full compaction would reclaim.
	DiskBytes      int64   // total segment-file bytes on disk
	LiveBytes      int64   // portion of DiskBytes still referenced by live keys
	CompactedBytes int64   // cumulative bytes reclaimed by compaction
	LiveRatio      float64 // LiveBytes/DiskBytes; 1 when nothing is on disk

	// Failure detector (remote clusters only; see remote.BreakerStats).
	// Counters are summed over the cluster's wire clients.
	BreakerOpen      int   // nodes currently in probation (breaker open)
	BreakerTrips     int64 // closed→open transitions across all nodes
	BreakerProbes    int64 // background reachability probes issued
	BreakerFastFails int64 // operations rejected without touching the network
}

// Stats returns a snapshot of the counters; ctx bounds the per-node
// storage probes (on a remote cluster each probe is a network round
// trip with retries). Down or unreachable nodes contribute zero to
// BytesStored — their storage cannot be observed.
func (s *Store) Stats(ctx context.Context) Stats {
	st := Stats{
		Requests:   s.reqCount.Load(),
		BytesRead:  s.bytesRead.Load(),
		BytesPut:   s.bytesPut.Load(),
		SimElapsed: time.Duration(s.simClock.Load()),
	}
	if r := s.repair; r != nil {
		st.RepairWrites = r.repairWrites.Load()
		st.RepairDropped = r.repairDropped.Load()
		st.HintsQueued = r.hintsQueued.Load()
		st.HintsReplayed = r.hintsReplayed.Load()
		st.HintsPending = r.hintsPending.Load()
		st.TombstonesGCed = r.tombstonesGC.Load()
	}
	if a := s.ae; a != nil {
		st.AESyncs = a.syncs.Load()
		st.AERangesDiffed = a.rangesDiffed.Load()
		st.AEKeysRepaired = a.keysRepaired.Load()
		st.AEBytesHashed = a.bytesHashed.Load()
	}
	for _, n := range s.nodes {
		if bs, ok := n.tr.breakerStats(); ok {
			if bs.Open {
				st.BreakerOpen++
			}
			st.BreakerTrips += bs.Trips
			st.BreakerProbes += bs.Probes
			st.BreakerFastFails += bs.FastFails
		}
		if b, err := n.stored(ctx); err == nil {
			st.BytesStored += b
		}
		// Unsupported or unreachable nodes contribute zero, mirroring the
		// BytesStored probes.
		if cs, err := n.compactStats(ctx); err == nil {
			st.DiskBytes += cs.DiskBytes
			st.LiveBytes += cs.LiveBytes
			st.CompactedBytes += cs.CompactedBytes
		}
	}
	st.LiveRatio = 1
	if st.DiskBytes > 0 {
		st.LiveRatio = float64(st.LiveBytes) / float64(st.DiskBytes)
	}
	return st
}

// Compact asks every node whose backend supports compaction
// (engine.Compactor) to reclaim dead storage, and reports the bytes
// reclaimed across the cluster by this call. Nodes without compaction
// support are skipped; down or unreachable nodes are skipped too — like
// Stats, storage that cannot be observed cannot be compacted, and the node
// can be compacted again once it returns. Hard backend errors are
// aggregated per node.
func (s *Store) Compact(ctx context.Context) (reclaimed int64, err error) {
	var errs []error
	for _, n := range s.nodes {
		before, err := n.compactStats(ctx)
		if errors.Is(err, engine.ErrNoCompaction) || isUnavailable(err) {
			continue
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("kvstore: compact node %d: %w", n.id, err))
			continue
		}
		after, err := n.compact(ctx)
		if err != nil {
			if !isUnavailable(err) {
				errs = append(errs, fmt.Errorf("kvstore: compact node %d: %w", n.id, err))
			}
			continue
		}
		reclaimed += after.CompactedBytes - before.CompactedBytes
	}
	return reclaimed, errors.Join(errs...)
}

// Reset wipes every node's backend empty (engine.Resetter) so benchmarks
// and end-to-end tests can reuse a running cluster — and, on a remote
// cluster, its daemons — between phases instead of reopening everything.
// The caller must quiesce concurrent writers first: a write racing the
// wipe may land on either side of it. Nodes whose backend does not
// implement Resetter surface engine.ErrNoReset, and any per-node failure
// (including unavailability) is an error — a half-wiped cluster would
// resurrect old data through replication repair — with failures
// aggregated per node. In-memory repair bookkeeping (parked-hint indexes,
// tombstone waits) is dropped alongside the data it describes, and remote
// geometry pins, wiped with everything else, are re-pinned before
// returning.
func (s *Store) Reset(ctx context.Context) error {
	var errs []error
	for _, n := range s.nodes {
		if err := n.reset(ctx); err != nil {
			errs = append(errs, fmt.Errorf("kvstore: reset node %d: %w", n.id, err))
		}
	}
	if s.repair != nil {
		s.repair.resetState()
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if s.fanout {
		return s.pinRemoteGeometry(ctx)
	}
	return nil
}

// ResetClock zeroes the virtual clock and counters (between experiment
// phases).
func (s *Store) ResetClock() {
	s.simClock.Store(0)
	s.reqCount.Store(0)
	s.bytesRead.Store(0)
	s.bytesPut.Store(0)
}

// SetNodeUp marks a node up or down, for failure-injection tests. Remote
// nodes refuse: their availability is a property of the real process, not
// a flag (stop the daemon instead). Reviving a node nudges the hint drain
// loop so parked writes replay promptly.
func (s *Store) SetNodeUp(id int, up bool) error {
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("kvstore: no node %d", id)
	}
	err := s.nodes[id].tr.injectFault(up)
	if err == nil && up && s.repair != nil {
		s.repair.kickDrain()
	}
	return err
}

// NodeBytes returns resident bytes per node, for balance checks; ctx
// bounds the probes. Down or unreachable nodes report zero.
func (s *Store) NodeBytes(ctx context.Context) []int64 {
	out := make([]int64, len(s.nodes))
	for i, n := range s.nodes {
		if b, err := n.stored(ctx); err == nil {
			out[i] = b
		}
	}
	return out
}
