package kvstore

import "time"

// CostModel captures the network/CPU cost parameters of the backing cluster.
// RStore's design revolves around the observation (paper §2.3) that the
// number of requests to the KVS dominates retrieval cost; the model charges
// a fixed per-request overhead plus transfer and scan time, and the Store
// accumulates the result on a virtual clock so experiments report
// deterministic, Cassandra-shaped latencies regardless of host speed.
//
// Defaults are calibrated against the paper's §2.3 measurement: ~100K unit
// requests took 65.42s, i.e. ≈0.65ms per request end to end.
type CostModel struct {
	// PerRequest is the fixed client+server overhead of one request
	// (round trip, coordination, row lookup).
	PerRequest time.Duration
	// Bandwidth is the sustained transfer rate in bytes/second between the
	// client and the cluster.
	Bandwidth float64
	// ScanPerByte is the client-side cost of scanning/extracting a byte of
	// a retrieved chunk (decompression and record extraction, §2.3 "the
	// overhead of ... scanning through them").
	ScanPerByte time.Duration
	// Parallelism is the number of requests the client keeps in flight for
	// parallel multi-gets (paper §2.4: chunks "are retrieved by issuing
	// queries in parallel"). 1 models a sequential client.
	Parallelism int
}

// DefaultCostModel returns the calibrated model (see package comment).
func DefaultCostModel() CostModel {
	return CostModel{
		PerRequest:  650 * time.Microsecond,
		Bandwidth:   100 << 20, // 100 MiB/s
		ScanPerByte: 2 * time.Nanosecond,
		Parallelism: 8,
	}
}

func (c CostModel) parallelism() int {
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// requestCost is the simulated time for one request transferring n bytes.
func (c CostModel) requestCost(n int) time.Duration {
	d := c.PerRequest
	if c.Bandwidth > 0 {
		d += time.Duration(float64(n) / c.Bandwidth * float64(time.Second))
	}
	return d
}

// scanCost is the simulated client-side time to scan n bytes.
func (c CostModel) scanCost(n int) time.Duration {
	return time.Duration(n) * c.ScanPerByte
}

// batchElapsed computes the simulated elapsed time of a batch of requests
// issued concurrently with the model's parallelism, where perNode[i] holds
// the byte sizes of the responses served by node i. Each node serves its
// requests serially (single disk/CPU lane per node), the client keeps at
// most Parallelism requests in flight, and the slower of the two constraints
// bounds the batch.
func (c CostModel) batchElapsed(perNode map[int][]int) time.Duration {
	var total time.Duration
	var slowestNode time.Duration
	reqs := 0
	for _, sizes := range perNode {
		var nodeTime time.Duration
		for _, n := range sizes {
			cost := c.requestCost(n)
			nodeTime += cost
			total += cost
			reqs++
		}
		if nodeTime > slowestNode {
			slowestNode = nodeTime
		}
	}
	if reqs == 0 {
		return 0
	}
	// The client lane constraint: total work spread over P lanes.
	lanes := time.Duration(int64(total) / int64(c.parallelism()))
	if slowestNode > lanes {
		return slowestNode
	}
	return lanes
}
