package kvstore

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/engine"
)

// Anti-entropy: the background convergence path that needs no reads.
//
// Read repair and hinted handoff (repair.go) both wait on an observation —
// a read that happens to touch the diverged key, or a write that knew it
// skipped a down replica. Divergence that occurs behind the store's back
// (a replica restored from an old backup, bytes lost to disk corruption,
// an operator writing to a node directly) is invisible to both: no hint
// was parked, and a key nobody reads stays wrong forever. The anti-entropy
// loop closes that gap Dynamo-style, with hash trees instead of reads:
//
//	tick ─ pick one replica pair (round-robin, skipping down /
//	       breaker-open nodes)
//	     ─ per table: fetch both nodes' tree digests (engine.HashRanger;
//	       one frame each on remote nodes); equal roots → done, the common
//	       case costs two digest exchanges and zero key transfers
//	     ─ unequal roots → fetch only the unequal buckets' key/hash lists
//	       and diff them key by key
//	     ─ each differing key: read both replicas' envelopes (one batched
//	       MultiGet per node), pick the LWW winner, and hand the loser to
//	       the existing repair writer — which re-checks the target's
//	       current version before applying, so a replica that converged
//	       through another path meanwhile is never regressed, and
//	       tombstone deliveries feed acknowledgment-based GC.
//
// One pair per tick bounds the background load to two tree sweeps per
// interval regardless of cluster size; every pair is visited as ticks
// accumulate. The loop runs on the repairer's lifecycle context — it is
// only started when ReplicationFactor > 1, so the repairer always exists —
// and is stopped by Store.Close before the repair workers it feeds.
type antiEntropy struct {
	s        *Store
	interval time.Duration
	fanout   int

	pair int // round-robin cursor over replica pairs

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Counters, surfaced through Stats.
	syncs        atomic.Int64 // completed pair syncs
	rangesDiffed atomic.Int64 // unequal buckets drilled into
	keysRepaired atomic.Int64 // differing keys handed to the repair writer
	bytesHashed  atomic.Int64 // key+value bytes digested by tree sweeps
}

func newAntiEntropy(s *Store, opts RepairOptions) *antiEntropy {
	fanout := opts.AntiEntropyFanout
	if fanout <= 0 {
		fanout = engine.DefaultHashFanout
	}
	if fanout > engine.MaxHashFanout {
		fanout = engine.MaxHashFanout
	}
	return &antiEntropy{
		s:        s,
		interval: opts.AntiEntropyInterval,
		fanout:   fanout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (a *antiEntropy) start() {
	go a.run()
}

// close stops the loop and waits for an in-flight tick to finish, so no
// sync touches node backends after Store.Close moves on to closing them.
func (a *antiEntropy) close() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

func (a *antiEntropy) run() {
	defer close(a.done)
	tick := time.NewTicker(a.interval)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
		}
		a.syncOnce()
	}
}

// syncOnce advances the pair cursor to the next replica pair with both
// nodes up and syncs it. With every pair down (or a single-node cluster)
// the tick is a no-op.
func (a *antiEntropy) syncOnce() {
	n := len(a.s.nodes)
	total := n * (n - 1) / 2
	if total == 0 {
		return
	}
	for tries := 0; tries < total; tries++ {
		i, j := pairAt(a.pair%total, n)
		a.pair++
		if !a.s.nodes[i].isUp() || !a.s.nodes[j].isUp() {
			continue
		}
		a.syncPair(a.s.repair.ctx, i, j)
		return
	}
}

// pairAt maps a linear index in [0, n*(n-1)/2) onto the (i, j) node pair
// with i < j, row-major: (0,1), (0,2), …, (1,2), ….
func pairAt(p, n int) (int, int) {
	for i := 0; i < n-1; i++ {
		row := n - 1 - i
		if p < row {
			return i, i + 1 + p
		}
		p -= row
	}
	return 0, 1
}

// syncPair converges every shared table of nodes i and j. Kvstore-private
// tables ("!hints", "!cluster") are skipped: hints are node-local
// bookkeeping and identity pins are meant to differ per node.
func (a *antiEntropy) syncPair(ctx context.Context, i, j int) {
	seen := map[string]bool{}
	var tables []string
	for _, nid := range [2]int{i, j} {
		ts, err := a.s.nodes[nid].tables(ctx)
		if err != nil {
			return // node vanished mid-tick; the next tick retries
		}
		for _, t := range ts {
			if len(t) > 0 && t[0] == '!' {
				continue
			}
			if !seen[t] {
				seen[t] = true
				tables = append(tables, t)
			}
		}
	}
	sort.Strings(tables)
	for _, table := range tables {
		select {
		case <-a.stop:
			return
		default:
		}
		if !a.syncTable(ctx, i, j, table) {
			return
		}
	}
	a.syncs.Add(1)
}

// syncTable diffs one table across the pair and queues repairs for the
// differing keys. False means the sync could not complete (a node became
// unreachable, or a backend lacks hashing) and the pair round should not
// be counted.
func (a *antiEntropy) syncTable(ctx context.Context, i, j int, table string) bool {
	di, err := a.s.nodes[i].hashTree(ctx, table, a.fanout)
	if err != nil {
		return false
	}
	dj, err := a.s.nodes[j].hashTree(ctx, table, a.fanout)
	if err != nil {
		return false
	}
	a.bytesHashed.Add(di.Bytes + dj.Bytes)
	if di.Root == dj.Root {
		return true
	}
	if len(di.Leaves) != a.fanout || len(dj.Leaves) != a.fanout {
		return false // malformed digest; do not guess at bucket alignment
	}
	var diff []string
	for b := 0; b < a.fanout; b++ {
		if di.Leaves[b] == dj.Leaves[b] {
			continue
		}
		a.rangesDiffed.Add(1)
		ki, err := a.s.nodes[i].hashRange(ctx, table, a.fanout, b)
		if err != nil {
			return false
		}
		kj, err := a.s.nodes[j].hashRange(ctx, table, a.fanout, b)
		if err != nil {
			return false
		}
		diff = append(diff, diffKeyHashes(ki, kj)...)
	}
	// Only keys replicated on BOTH nodes can legitimately be compared: at
	// ReplicationFactor < Nodes each node also holds keys the other is not
	// a replica of, and those differ by design.
	rf := a.s.cfg.ReplicationFactor
	keys := diff[:0]
	for _, k := range diff {
		onI, onJ := false, false
		for _, r := range a.s.ring.replicas(k, rf) {
			onI = onI || r == i
			onJ = onJ || r == j
		}
		if onI && onJ {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return true
	}
	vi, pi, err := a.s.nodes[i].multiGet(ctx, table, keys)
	if err != nil {
		return false
	}
	vj, pj, err := a.s.nodes[j].multiGet(ctx, table, keys)
	if err != nil {
		return false
	}
	for idx, key := range keys {
		a.reconcile(ctx, table, key, i, j, vi[idx], pi[idx], vj[idx], pj[idx])
	}
	return true
}

// diffKeyHashes merges two ascending key/hash lists and returns the keys
// present on only one side or hashing differently on the two.
func diffKeyHashes(ki, kj []engine.KeyHash) []string {
	var out []string
	x, y := 0, 0
	for x < len(ki) && y < len(kj) {
		switch {
		case ki[x].Key < kj[y].Key:
			out = append(out, ki[x].Key)
			x++
		case ki[x].Key > kj[y].Key:
			out = append(out, kj[y].Key)
			y++
		default:
			if ki[x].Hash != kj[y].Hash {
				out = append(out, ki[x].Key)
			}
			x++
			y++
		}
	}
	for ; x < len(ki); x++ {
		out = append(out, ki[x].Key)
	}
	for ; y < len(kj); y++ {
		out = append(out, kj[y].Key)
	}
	return out
}

// reconcile LWW-resolves one differing key between nodes i and j and hands
// the loser to the repair writer. An envelope that fails to parse counts
// as absent, so the intact replica's version repairs over corruption.
func (a *antiEntropy) reconcile(ctx context.Context, table, key string, i, j int, rawI []byte, okI bool, rawJ []byte, okJ bool) {
	var tsI, tsJ uint64
	var tombI, tombJ bool
	if okI {
		if _, ts, tomb, err := unenvelope(rawI); err == nil {
			tsI, tombI = ts, tomb
		} else {
			okI = false
		}
	}
	if okJ {
		if _, ts, tomb, err := unenvelope(rawJ); err == nil {
			tsJ, tombJ = ts, tomb
		} else {
			okJ = false
		}
	}
	var env []byte
	var ts uint64
	var tomb, loserAbsent bool
	var loser int
	switch {
	case !okI && !okJ:
		return // both unreadable; nothing trustworthy to spread
	case okI && okJ:
		if tsI == tsJ && tombI == tombJ {
			// Same version, different payload bytes (one side corrupted
			// in place): the conditional repair writer only applies
			// strictly newer state, so this cannot be fixed here — and
			// picking a "winner" between equal timestamps would be a
			// coin flip over which copy is the corrupt one.
			return
		}
		if lwwNewer(tsI, tombI, i, tsJ, tombJ, j) {
			env, ts, tomb, loser = rawI, tsI, tombI, j
		} else {
			env, ts, tomb, loser = rawJ, tsJ, tombJ, i
		}
	case okI:
		env, ts, tomb, loser, loserAbsent = rawI, tsI, tombI, j, true
	default:
		env, ts, tomb, loser, loserAbsent = rawJ, tsJ, tombJ, i, true
	}
	if tomb && loserAbsent {
		// Tombstone on one side, nothing on the other. The repair writer
		// refuses to write a tombstone over nothing (it would undo GC), so
		// queueing the task — and counting it as a repair — would just
		// re-discover the same pair every sweep without ever converging
		// it. Converge it the way the read path does instead: absence IS
		// the loser's acknowledgment, and once every replica holds either
		// exactly this tombstone or nothing, the holder side is eligible
		// for collection (ack-tracked now, or TTL-expired for tombstones
		// orphaned by a previous process).
		a.observeTombstone(ctx, table, key, ts)
		return
	}
	// The queued task owns its envelope (multiGet results are fresh
	// copies, but the contract belongs to the task, not the transport).
	a.s.repair.enqueue(repairTask{
		table: table, key: key,
		env: append([]byte(nil), env...), ts: ts, tomb: tomb,
		targets: []int{loser},
	})
	a.keysRepaired.Add(1)
}

// observeTombstone sweeps every replica of a tombstoned key and records
// what it finds: a replica holding exactly the tombstone has by definition
// acknowledged it, and a replica holding nothing has nothing the tombstone
// protects against (mirrors lwwGet's complete-observation rule). When the
// sweep covers all replicas it also hands the observation to the TTL
// fallback, the only collection route for tombstones whose in-memory ack
// tracking died with a previous process — without it a pair like
// (tombstone, wiped replica) diffs on every anti-entropy sweep forever.
func (a *antiEntropy) observeTombstone(ctx context.Context, table, key string, ts uint64) {
	replicas := a.s.ring.replicas(key, a.s.cfg.ReplicationFactor)
	for _, nid := range replicas {
		n := a.s.nodes[nid]
		if !n.isUp() {
			return
		}
		raw, ok, err := n.get(ctx, table, key)
		if err != nil {
			return
		}
		if ok {
			_, rts, rtomb, uerr := unenvelope(raw)
			if uerr != nil || !rtomb || rts != ts {
				return // a replica disagrees; the normal diff path handles it
			}
		}
		a.s.repair.tombAck(table, key, ts, nid)
	}
	a.s.repair.observeExpiredTombstone(table, key, ts, replicas)
}
