package kvstore

import (
	"context"

	"rstore/internal/engine"
)

// node is a single storage server of the cluster. All data operations
// route through its transport — a local engine.Backend behind the
// failure-injection gate, or a remote daemon behind a wire client — so the
// Store's replication and routing logic cannot tell a simulated node from
// a real one. Isolation guarantees (callers never alias node state) are
// the backend's contract; see engine.Backend.
type node struct {
	id int
	tr transport
}

func newNode(id int, tr transport) *node {
	return &node{id: id, tr: tr}
}

func (n *node) put(ctx context.Context, table, key string, value []byte) error {
	return n.tr.put(ctx, table, key, value)
}

func (n *node) batchPut(ctx context.Context, table string, entries []engine.Entry) error {
	return n.tr.batchPut(ctx, table, entries)
}

func (n *node) get(ctx context.Context, table, key string) ([]byte, bool, error) {
	return n.tr.get(ctx, table, key)
}

// multiGet reads many keys in one transport call (a single wire round trip
// on remote nodes); values and presence flags come back in request order.
func (n *node) multiGet(ctx context.Context, table string, keys []string) ([][]byte, []bool, error) {
	return n.tr.multiGet(ctx, table, keys)
}

// del physically removes (table, key) from this node's backend. Only the
// repair subsystem calls it (tombstone GC, hint cleanup); the replication
// layer's Delete writes tombstones instead.
func (n *node) del(ctx context.Context, table, key string) error {
	return n.tr.del(ctx, table, key)
}

// scan visits every key/value of a table. Values passed to fn may alias
// backend storage; fn must not retain or mutate them.
func (n *node) scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	return n.tr.scan(ctx, table, fn)
}

func (n *node) tables(ctx context.Context) ([]string, error) {
	return n.tr.tables(ctx)
}

// stored reports the node's resident bytes; a down or unreachable node
// errors (unavailable) instead of touching storage it cannot see.
func (n *node) stored(ctx context.Context) (int64, error) {
	return n.tr.stored(ctx)
}

// compact reclaims dead storage on the node's backend; compactStats reads
// the reclaim state without compacting. Backends without compaction return
// engine.ErrNoCompaction.
func (n *node) compact(ctx context.Context) (engine.CompactionStats, error) {
	return n.tr.compact(ctx)
}

func (n *node) compactStats(ctx context.Context) (engine.CompactionStats, error) {
	return n.tr.compactStats(ctx)
}

// reset wipes the node's backend empty. Backends without reset support
// return engine.ErrNoReset.
func (n *node) reset(ctx context.Context) error {
	return n.tr.reset(ctx)
}

// hashTree and hashRange serve the anti-entropy digest exchange. Backends
// without hash support return engine.ErrNoHashRange.
func (n *node) hashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	return n.tr.hashTree(ctx, table, fanout)
}

func (n *node) hashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error) {
	return n.tr.hashRange(ctx, table, fanout, bucket)
}

func (n *node) isUp() bool {
	return n.tr.available()
}
