package kvstore

import (
	"errors"
	"sync"

	"rstore/internal/engine"
)

// errNodeDown reports an operation against a node marked down by failure
// injection. The Store routes around it; it never escapes to callers.
var errNodeDown = errors.New("kvstore: node down")

// node is a single storage server: an up/down flag (for failure-injection
// tests) in front of a storage engine that owns the actual data. Isolation
// guarantees (callers never alias node state) are the backend's contract;
// see engine.Backend.
type node struct {
	id int
	mu sync.RWMutex // guards up
	up bool
	be engine.Backend
}

func newNode(id int, be engine.Backend) *node {
	return &node{id: id, up: true, be: be}
}

func (n *node) put(table, key string, value []byte) error {
	if !n.isUp() {
		return errNodeDown
	}
	return n.be.Put(table, key, value)
}

func (n *node) batchPut(table string, entries []engine.Entry) error {
	if !n.isUp() {
		return errNodeDown
	}
	return n.be.BatchPut(table, entries)
}

func (n *node) get(table, key string) ([]byte, bool, error) {
	if !n.isUp() {
		return nil, false, errNodeDown
	}
	return n.be.Get(table, key)
}

func (n *node) delete(table, key string) error {
	if !n.isUp() {
		return errNodeDown
	}
	return n.be.Delete(table, key)
}

// scan visits every key/value of a table. Values passed to fn may alias
// backend storage; fn must not retain or mutate them.
func (n *node) scan(table string, fn func(key string, value []byte) bool) error {
	if !n.isUp() {
		return errNodeDown
	}
	return n.be.Scan(table, fn)
}

func (n *node) tables() ([]string, error) {
	if !n.isUp() {
		return nil, errNodeDown
	}
	return n.be.Tables()
}

func (n *node) stored() int64 {
	return n.be.BytesStored()
}

func (n *node) setUp(up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up = up
}

func (n *node) isUp() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.up
}
