package kvstore

import "rstore/internal/engine"

// node is a single storage server of the cluster. All data operations
// route through its transport — a local engine.Backend behind the
// failure-injection gate, or a remote daemon behind a wire client — so the
// Store's replication and routing logic cannot tell a simulated node from
// a real one. Isolation guarantees (callers never alias node state) are
// the backend's contract; see engine.Backend.
type node struct {
	id int
	tr transport
}

func newNode(id int, tr transport) *node {
	return &node{id: id, tr: tr}
}

func (n *node) put(table, key string, value []byte) error {
	return n.tr.put(table, key, value)
}

func (n *node) batchPut(table string, entries []engine.Entry) error {
	return n.tr.batchPut(table, entries)
}

func (n *node) get(table, key string) ([]byte, bool, error) {
	return n.tr.get(table, key)
}

// scan visits every key/value of a table. Values passed to fn may alias
// backend storage; fn must not retain or mutate them.
func (n *node) scan(table string, fn func(key string, value []byte) bool) error {
	return n.tr.scan(table, fn)
}

func (n *node) tables() ([]string, error) {
	return n.tr.tables()
}

// stored reports the node's resident bytes; a down or unreachable node
// errors (unavailable) instead of touching storage it cannot see.
func (n *node) stored() (int64, error) {
	return n.tr.stored()
}

func (n *node) isUp() bool {
	return n.tr.available()
}
