package kvstore

import (
	"sync"
)

// node is a single storage server. Data lives in per-table maps guarded by a
// read-write mutex; values are copied on write and on read so callers can
// never alias the node's internal state (the same isolation a networked
// store provides).
type node struct {
	id   int
	mu   sync.RWMutex
	up   bool
	data map[string]map[string][]byte // table → key → value
	// bytesStored tracks the resident payload volume for storage accounting.
	bytesStored int64
}

func newNode(id int) *node {
	return &node{id: id, up: true, data: make(map[string]map[string][]byte)}
}

func (n *node) put(table, key string, value []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up {
		return false
	}
	t, ok := n.data[table]
	if !ok {
		t = make(map[string][]byte)
		n.data[table] = t
	}
	if old, ok := t[key]; ok {
		n.bytesStored -= int64(len(old))
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	t[key] = cp
	n.bytesStored += int64(len(cp))
	return true
}

func (n *node) get(table, key string) ([]byte, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.up {
		return nil, false
	}
	v, ok := n.data[table][key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}

func (n *node) delete(table, key string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up {
		return false
	}
	if old, ok := n.data[table][key]; ok {
		n.bytesStored -= int64(len(old))
		delete(n.data[table], key)
	}
	return true
}

// scan visits every key/value of a table in unspecified order under the read
// lock. Values passed to fn alias internal storage; fn must not retain or
// mutate them.
func (n *node) scan(table string, fn func(key string, value []byte) bool) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.up {
		return false
	}
	for k, v := range n.data[table] {
		if !fn(k, v) {
			break
		}
	}
	return true
}

func (n *node) stored() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.bytesStored
}

func (n *node) setUp(up bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up = up
}

func (n *node) isUp() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.up
}
