package kvstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rstore/internal/engine"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
	"rstore/internal/types"
)

// testNode is one in-process storage daemon for cluster tests.
type testNode struct {
	be  engine.Backend
	srv *engined.Server
}

// startNodes boots n daemons over memory backends and returns their
// addresses. kill/restart simulate real process death and recovery.
func startNodes(t *testing.T, n int) ([]string, []*testNode) {
	t.Helper()
	addrs := make([]string, n)
	nodes := make([]*testNode, n)
	for i := range nodes {
		be := memory.New()
		srv, err := engined.Start("127.0.0.1:0", be)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &testNode{be: be, srv: srv}
		addrs[i] = srv.Addr().String()
		t.Cleanup(func() { srv.Close() })
	}
	return addrs, nodes
}

func (tn *testNode) kill() { tn.srv.Close() }

func (tn *testNode) restart(t *testing.T, addr string) {
	t.Helper()
	srv, err := engined.Start(addr, tn.be)
	if err != nil {
		t.Fatal(err)
	}
	tn.srv = srv
	t.Cleanup(func() { srv.Close() })
}

// remoteOpts keeps retry latency test-friendly.
func remoteOpts() remote.Options {
	return remote.Options{Attempts: 2, Backoff: 1e6 /* 1ms */}
}

func openRemote(t *testing.T, addrs []string, rf int) *Store {
	t.Helper()
	s, err := Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: addrs, ReplicationFactor: rf, Remote: remoteOpts()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRemoteClusterBasicOps(t *testing.T) {
	addrs, _ := startNodes(t, 3)
	s := openRemote(t, addrs, 2)
	if s.Nodes() != 3 {
		t.Fatalf("Nodes = %d", s.Nodes())
	}

	var keys []string
	var entries []Entry
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("k%03d", i)
		keys = append(keys, k)
		entries = append(entries, Entry{Key: k, Value: []byte("v-" + k)})
	}
	if err := s.BatchPut(context.Background(), "t", entries); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		v, err := s.Get(context.Background(), "t", k)
		if err != nil || string(v) != "v-"+k {
			t.Fatalf("%s: %q %v", k, v, err)
		}
	}
	res, err := s.MultiGet(context.Background(), "t", keys)
	if err != nil || len(res.Missing) != 0 {
		t.Fatalf("multiget: %v missing=%v", err, res.Missing)
	}
	if _, err := s.Get(context.Background(), "t", "absent"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
	if err := s.Delete(context.Background(), "t", keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), "t", keys[0]); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	// Scan sees each surviving key exactly once despite replication.
	got := map[string]int{}
	if err := s.Scan(context.Background(), "t", func(k string, v []byte) bool { got[k]++; return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys)-1 {
		t.Fatalf("scanned %d keys, want %d", len(got), len(keys)-1)
	}
	for k, n := range got {
		if n != 1 {
			t.Fatalf("%s visited %d times", k, n)
		}
	}
	if st := s.Stats(context.Background()); st.BytesStored <= 0 {
		t.Fatalf("BytesStored = %d", st.BytesStored)
	}
}

func TestRemoteClusterNodeCountFromAddrs(t *testing.T) {
	addrs, _ := startNodes(t, 2)
	if _, err := Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: addrs, Nodes: 5}); err == nil {
		t.Fatal("node count / address list mismatch accepted")
	}
	if _, err := Open(context.Background(), Config{Engine: EngineRemote}); err == nil {
		t.Fatal("remote engine with no addresses accepted")
	}
}

func TestRemoteClusterRoutesAroundDeadNode(t *testing.T) {
	addrs, nodes := startNodes(t, 3)
	s := openRemote(t, addrs, 2)

	var keys []string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%03d", i)
		keys = append(keys, k)
		if err := s.Put(context.Background(), "t", k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill a real process: connection refused, not a flag.
	nodes[1].kill()

	// Reads recover from surviving replicas.
	for _, k := range keys {
		if v, err := s.Get(context.Background(), "t", k); err != nil || string(v) != k {
			t.Fatalf("get %s with node down: %q %v", k, v, err)
		}
	}
	res, err := s.MultiGet(context.Background(), "t", keys)
	if err != nil || len(res.Missing) != 0 {
		t.Fatalf("multiget with node down: %v missing=%v", err, res.Missing)
	}

	// Writes route around the dead node (every key keeps one live replica
	// at rf=2 with one of three nodes down).
	var entries []Entry
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("new%03d", i)
		keys = append(keys, k)
		entries = append(entries, Entry{Key: k, Value: []byte(k)})
	}
	if err := s.BatchPut(context.Background(), "t", entries); err != nil {
		t.Fatalf("batchput with node down: %v", err)
	}

	// Stats skip the unreachable node instead of blocking or lying.
	if st := s.Stats(context.Background()); st.BytesStored <= 0 {
		t.Fatalf("BytesStored with node down = %d", st.BytesStored)
	}
	if nb := s.NodeBytes(context.Background()); nb[1] != 0 {
		t.Fatalf("dead node reports %d bytes", nb[1])
	}

	// Restart: the node comes back (stale for writes made while down —
	// reads fall back across replicas, so every key is still served).
	nodes[1].restart(t, addrs[1])
	for _, k := range keys {
		if v, err := s.Get(context.Background(), "t", k); err != nil || string(v) != k {
			t.Fatalf("get %s after restart: %q %v", k, v, err)
		}
	}
	res, err = s.MultiGet(context.Background(), "t", keys)
	if err != nil || len(res.Missing) != 0 {
		t.Fatalf("multiget after restart: %v missing=%v", err, res.Missing)
	}
}

// TestMultiGetBatchedMatchesPerKey: the batched read path (one OpMultiGet
// per node) and the per-key path (Config.DisableReadBatching) must be
// observationally identical — same values, same missing set — including
// across tombstones and a dead node.
func TestMultiGetBatchedMatchesPerKey(t *testing.T) {
	addrs, nodes := startNodes(t, 3)
	batched := openRemote(t, addrs, 2)
	perKey, err := Open(context.Background(), Config{
		Engine: EngineRemote, NodeAddrs: addrs, ReplicationFactor: 2,
		Remote: remoteOpts(), DisableReadBatching: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { perKey.Close() })

	var keys []string
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("k%03d", i)
		keys = append(keys, k)
		if err := batched.Put(context.Background(), "t", k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstones and never-written keys must land in Missing on both paths.
	for i := 0; i < 10; i++ {
		if err := batched.Delete(context.Background(), "t", keys[i*7]); err != nil {
			t.Fatal(err)
		}
	}
	keys = append(keys, "never-written-a", "never-written-b")

	check := func(when string) {
		t.Helper()
		rb, err := batched.MultiGet(context.Background(), "t", keys)
		if err != nil {
			t.Fatalf("%s: batched multiget: %v", when, err)
		}
		rp, err := perKey.MultiGet(context.Background(), "t", keys)
		if err != nil {
			t.Fatalf("%s: per-key multiget: %v", when, err)
		}
		if len(rb.Values) != len(rp.Values) || fmt.Sprint(rb.Missing) != fmt.Sprint(rp.Missing) {
			t.Fatalf("%s: missing sets differ: batched %v, per-key %v", when, rb.Missing, rp.Missing)
		}
		for i := range keys {
			if string(rb.Values[i]) != string(rp.Values[i]) {
				t.Fatalf("%s: %s = %q batched, %q per-key", when, keys[i], rb.Values[i], rp.Values[i])
			}
		}
		if rb.Requests != len(keys) || rp.Requests != len(keys) {
			t.Fatalf("%s: accounting differs: %d vs %d requests, want %d both",
				when, rb.Requests, rp.Requests, len(keys))
		}
	}
	check("all nodes up")

	// One node dead at rf=2: both paths route to surviving replicas.
	nodes[2].kill()
	check("one node down")
	nodes[2].restart(t, addrs[2])
	check("after restart")
}

func TestRemoteClusterAllReplicasDownIsAnError(t *testing.T) {
	addrs, nodes := startNodes(t, 2)
	s := openRemote(t, addrs, 1)
	if err := s.Put(context.Background(), "t", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	owner := s.ring.primary("a")
	nodes[owner].kill()
	if _, err := s.Get(context.Background(), "t", "a"); err == nil || !strings.Contains(err.Error(), "all replicas down") {
		t.Fatalf("read from fully-dead replica set: %v", err)
	}
	if err := s.Put(context.Background(), "t", "a", []byte("2")); err == nil {
		t.Fatal("write to fully-dead replica set succeeded")
	}
}

func TestRemoteClusterRejectsFailureInjection(t *testing.T) {
	addrs, _ := startNodes(t, 1)
	s := openRemote(t, addrs, 1)
	if err := s.SetNodeUp(0, false); err == nil {
		t.Fatal("failure injection on a remote node accepted")
	}
}

// Satellite: Close is idempotent and aggregates per-node errors.

// failingCloseBackend wraps memory with a Close that always errors.
type failingCloseBackend struct {
	engine.Backend
	id int
}

func (b failingCloseBackend) Close() error { return fmt.Errorf("sync of node %d failed", b.id) }

func TestCloseIdempotentAndAggregated(t *testing.T) {
	s, err := Open(context.Background(), Config{Nodes: 3, NewBackend: func(id int) (engine.Backend, error) {
		return failingCloseBackend{Backend: memory.New(), id: id}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Close()
	if err == nil {
		t.Fatal("aggregated close error lost")
	}
	// errors.Join: every node's failure is present, not just the first.
	for id := 0; id < 3; id++ {
		if !strings.Contains(err.Error(), fmt.Sprintf("sync of node %d failed", id)) {
			t.Fatalf("close error lost node %d: %v", id, err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("close node %d", id)) {
			t.Fatalf("close error not annotated with node id: %v", err)
		}
	}
	// Second close: no-op, backends not re-touched.
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// Satellite: stats skip down nodes instead of touching their backend.

// pollingBackend counts BytesStored calls so the test can prove a down
// node's backend is never consulted.
type pollingBackend struct {
	engine.Backend
	polls *int
}

func (b pollingBackend) BytesStored() int64 { *b.polls++; return b.Backend.BytesStored() }

func TestStatsSkipDownNodes(t *testing.T) {
	polls := make([]int, 2)
	s, err := Open(context.Background(), Config{Nodes: 2, NewBackend: func(id int) (engine.Backend, error) {
		return pollingBackend{Backend: memory.New(), polls: &polls[id]}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 32; i++ {
		if err := s.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), []byte("xxxx")); err != nil {
			t.Fatal(err)
		}
	}
	all := s.Stats(context.Background()).BytesStored
	if all <= 0 {
		t.Fatalf("BytesStored = %d", all)
	}
	if err := s.SetNodeUp(1, false); err != nil {
		t.Fatal(err)
	}
	polls[1] = 0
	down := s.Stats(context.Background()).BytesStored
	if down <= 0 || down >= all {
		t.Fatalf("BytesStored with node 1 down = %d (all up: %d)", down, all)
	}
	if nb := s.NodeBytes(context.Background()); nb[1] != 0 {
		t.Fatalf("down node reports %d bytes", nb[1])
	}
	if polls[1] != 0 {
		t.Fatalf("down node's backend polled %d times", polls[1])
	}
}

// Scan feeds recovery and snapshots, so it must refuse to present a
// truncated view instead of silently skipping nodes whose keys have no
// other replica.
func TestScanRefusesIncompleteView(t *testing.T) {
	s, err := Open(context.Background(), Config{Nodes: 3, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 60; i++ {
		if err := s.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	count := func() (int, error) {
		n := 0
		err := s.Scan(context.Background(), "t", func(string, []byte) bool { n++; return true })
		return n, err
	}
	// One node down at rf=2: every key still has a live replica, so the
	// sweep is complete.
	if err := s.SetNodeUp(0, false); err != nil {
		t.Fatal(err)
	}
	if n, err := count(); err != nil || n != 60 {
		t.Fatalf("scan with 1/3 nodes down: n=%d err=%v", n, err)
	}
	// Two nodes down at rf=2: some key's whole replica set may be gone.
	if err := s.SetNodeUp(1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := count(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("scan with 2/3 nodes down at rf=2: %v", err)
	}
}

func TestUnreplicatedScanRefusesDownNode(t *testing.T) {
	s, err := Open(context.Background(), Config{Nodes: 2, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetNodeUp(1, false); err != nil {
		t.Fatal(err)
	}
	err = s.Scan(context.Background(), "t", func(string, []byte) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("unreplicated scan with a down node: %v", err)
	}
}

// The remote counterpart of the GEOMETRY pin: reopening the same daemons
// with the address list reordered (or resized) must be refused — keys
// would hash to the wrong nodes.
func TestRemoteClusterRefusesReorderedAddresses(t *testing.T) {
	addrs, _ := startNodes(t, 3)
	s := openRemote(t, addrs, 1)
	if err := s.Put(context.Background(), "t", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	swapped := []string{addrs[1], addrs[0], addrs[2]}
	if _, err := Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: swapped, Remote: remoteOpts()}); err == nil ||
		!strings.Contains(err.Error(), "reordered or resized") {
		t.Fatalf("reordered address list: %v", err)
	}
	shrunk := addrs[:2]
	if _, err := Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: shrunk, Remote: remoteOpts()}); err == nil {
		t.Fatal("resized address list accepted")
	}

	// The correct list keeps working, and snapshots exclude the pin.
	s2, err := Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: addrs, Remote: remoteOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get(context.Background(), "t", "a"); err != nil || string(v) != "1" {
		t.Fatalf("reopen with correct order: %q %v", v, err)
	}
	var buf strings.Builder
	if err := s2.Dump(context.Background(), &dumpWriter{&buf}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), clusterTable) {
		t.Fatal("snapshot contains the per-daemon identity table")
	}
}

// dumpWriter adapts strings.Builder to io.Writer.
type dumpWriter struct{ b *strings.Builder }

func (w *dumpWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

// A data directory from before the LWW value format must be refused with
// a clear message, not misparsed.
func TestDisklogRefusesPreLWWDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "GEOMETRY"), []byte("nodes=1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(context.Background(), Config{Engine: EngineDisklog, Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "pre-lww1 value format") {
		t.Fatalf("pre-LWW directory: %v", err)
	}
}

// The replication factor is pinned alongside the ring geometry: reopening
// the same daemons with a different -rf would silently under- (or over-)
// replicate every new write, so it must be refused, while legacy pins
// written before rf was recorded are upgraded in place.
func TestRemoteClusterRefusesReplicationFactorChange(t *testing.T) {
	addrs, nodes := startNodes(t, 3)
	s := openRemote(t, addrs, 2)
	if err := s.Put(context.Background(), "t", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, err := Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: addrs, ReplicationFactor: 1, Remote: remoteOpts()})
	if err == nil || !strings.Contains(err.Error(), "replication factor") {
		t.Fatalf("rf change 2 -> 1: %v, want a pinned-replication-factor refusal", err)
	}
	_, err = Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: addrs, ReplicationFactor: 3, Remote: remoteOpts()})
	if err == nil || !strings.Contains(err.Error(), "replication factor") {
		t.Fatalf("rf change 2 -> 3: %v, want a pinned-replication-factor refusal", err)
	}

	// The pinned factor keeps working.
	s2 := openRemote(t, addrs, 2)
	if v, err := s2.Get(context.Background(), "t", "a"); err != nil || string(v) != "1" {
		t.Fatalf("reopen at pinned rf: %q %v", v, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A legacy pin (written before rf was recorded) with matching
	// position/shape/format is adopted and upgraded, after which the
	// adopted factor is enforced like any other.
	for i, tn := range nodes {
		legacy := fmt.Sprintf("%d of %d format=%s", i, len(nodes), storedFormat)
		env := envelope(envValue, 1, []byte(legacy))
		if err := tn.be.Put(context.Background(), clusterTable, nodeIDKey, env); err != nil {
			t.Fatal(err)
		}
	}
	s3 := openRemote(t, addrs, 3)
	if v, err := s3.Get(context.Background(), "t", "a"); err != nil || string(v) != "1" {
		t.Fatalf("reopen over legacy pins: %q %v", v, err)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(context.Background(), Config{Engine: EngineRemote, NodeAddrs: addrs, ReplicationFactor: 2, Remote: remoteOpts()}); err == nil ||
		!strings.Contains(err.Error(), "replication factor") {
		t.Fatalf("rf change after legacy upgrade: %v, want a refusal", err)
	}
}
