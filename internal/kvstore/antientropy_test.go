package kvstore

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"rstore/internal/engine"
)

// fastAE is the anti-entropy test tuning: tick fast, and shut off both
// foreground repair channels so any convergence observed below is the AE
// loop's alone.
func fastAE() RepairOptions {
	return RepairOptions{
		AntiEntropyInterval: 2 * time.Millisecond,
		DisableReadRepair:   true,
		DisableHints:        true,
	}
}

func TestAntiEntropyPairAt(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		total := n * (n - 1) / 2
		seen := map[[2]int]bool{}
		for p := 0; p < total; p++ {
			i, j := pairAt(p, n)
			if i < 0 || j <= i || j >= n {
				t.Fatalf("pairAt(%d, %d) = (%d, %d): not an ordered pair", p, n, i, j)
			}
			if seen[[2]int{i, j}] {
				t.Fatalf("pairAt(%d, %d) = (%d, %d): pair repeated", p, n, i, j)
			}
			seen[[2]int{i, j}] = true
		}
		if len(seen) != total {
			t.Fatalf("n=%d: %d distinct pairs, want %d", n, len(seen), total)
		}
	}
}

func TestAntiEntropyDiffKeyHashes(t *testing.T) {
	kh := func(k string, h uint64) engine.KeyHash { return engine.KeyHash{Key: k, Hash: h} }
	cases := []struct {
		name   string
		ki, kj []engine.KeyHash
		want   []string
	}{
		{"both empty", nil, nil, nil},
		{"identical", []engine.KeyHash{kh("a", 1), kh("b", 2)}, []engine.KeyHash{kh("a", 1), kh("b", 2)}, nil},
		{"value differs", []engine.KeyHash{kh("a", 1)}, []engine.KeyHash{kh("a", 9)}, []string{"a"}},
		{"left only", []engine.KeyHash{kh("a", 1), kh("b", 2)}, []engine.KeyHash{kh("b", 2)}, []string{"a"}},
		{"right only", []engine.KeyHash{kh("b", 2)}, []engine.KeyHash{kh("a", 1), kh("b", 2)}, []string{"a"}},
		{
			"interleaved",
			[]engine.KeyHash{kh("a", 1), kh("c", 3), kh("e", 5)},
			[]engine.KeyHash{kh("b", 2), kh("c", 4), kh("e", 5), kh("f", 6)},
			[]string{"a", "b", "c", "f"},
		},
	}
	for _, tc := range cases {
		if got := diffKeyHashes(tc.ki, tc.kj); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: diffKeyHashes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestAntiEntropyOffByDefault: the loop must not exist unless explicitly
// enabled — and never on an unreplicated cluster, where there is no peer to
// sync against.
func TestAntiEntropyOffByDefault(t *testing.T) {
	s, _ := openRepair(t, 3, 2, fastRepair())
	if s.ae != nil {
		t.Fatal("anti-entropy loop running without AntiEntropyInterval")
	}
	s2, _ := openRepair(t, 3, 1, fastAE())
	if s2.ae != nil {
		t.Fatal("anti-entropy loop running at replication factor 1")
	}
}

// TestAntiEntropyRepairsSilentDivergence is the core guarantee: a replica
// corrupted behind the store's back — deleted keys, values regressed to
// older timestamps, garbage bytes — converges back to its peers through the
// background loop alone. No client reads (read repair is off), no missed
// writes (hints are off and no node was ever down): nothing but the hash
// trees can notice the damage.
func TestAntiEntropyRepairsSilentDivergence(t *testing.T) {
	s, backends := openRepair(t, 3, 3, fastAE())
	ctx := context.Background()

	const n = 24
	for i := 0; i < n; i++ {
		if err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupt node 1 directly through its backend. The store sees none of
	// these writes — its clock, stats, and repair queues are untouched.
	if err := backends[1].Delete(ctx, "t", "k00"); err != nil { // silent loss
		t.Fatal(err)
	}
	if err := backends[1].Put(ctx, "t", "k01", envelope(envValue, 1, []byte("stale"))); err != nil { // regressed
		t.Fatal(err)
	}
	if err := backends[1].Put(ctx, "t", "k02", []byte{0xff, 0xbd}); err != nil { // not even an envelope
		t.Fatal(err)
	}

	waitFor(t, "silently diverged replica repaired", func() bool {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%02d", i)
			if !rawEqual(t, backends[0], backends[1], "t", key) || !rawEqual(t, backends[0], backends[2], "t", key) {
				return false
			}
		}
		return true
	})
	st := s.Stats(ctx)
	if st.AESyncs < 1 || st.AERangesDiffed < 1 || st.AEKeysRepaired < 3 || st.AEBytesHashed < 1 {
		t.Fatalf("AE stats = syncs %d, ranges %d, keys %d, bytes %d; want all positive (>=3 keys)",
			st.AESyncs, st.AERangesDiffed, st.AEKeysRepaired, st.AEBytesHashed)
	}
	// The converged value must be the intact replicas' version, not the
	// corruption.
	if v, ok := rawGet(t, backends[1], "t", "k01"); !ok || string(v[EnvelopeOverhead:]) != "v01" {
		t.Fatalf("node 1 k01 = %q, %v after repair", v, ok)
	}
}

// TestAntiEntropySuppressesTombstoneResurrection: a replica where a deleted
// key has silently come back to life (e.g. restored from an old backup) is
// re-killed by the surviving tombstone, and the tombstone's ack set —
// incomplete because one replica missed the delete — is finished by the AE
// repairs so GC can finally collect it everywhere.
func TestAntiEntropySuppressesTombstoneResurrection(t *testing.T) {
	s, backends := openRepair(t, 3, 3, fastAE())
	ctx := context.Background()

	if err := s.Put(ctx, "t", "ghost", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	// Capture the live envelope, then delete with node 2 down and hints
	// off: node 2 keeps the live value, and the tombstone on nodes 0/1 can
	// never be GC'd (its ack set is stuck at 2 of 3) until AE intervenes.
	old := mustRaw(t, backends[1], "t", "ghost")
	if err := s.SetNodeUp(2, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "t", "ghost"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNodeUp(2, true); err != nil {
		t.Fatal(err)
	}
	// Resurrect the old value over node 1's tombstone behind the store's
	// back — older timestamp, so LWW must reject it.
	if err := backends[1].Put(ctx, "t", "ghost", old); err != nil {
		t.Fatal(err)
	}

	// Convergence: the tombstone spreads to nodes 1 and 2, their repair
	// writes complete the ack set, and GC erases it — so the settled state
	// is "absent everywhere", never the resurrected value. Requiring full
	// collection also pins the repair-queue regression where a GC task
	// scheduled during its own tombstone repair coalesced against it and
	// was dropped forever.
	waitFor(t, "resurrection suppressed and tombstone collected everywhere", func() bool {
		for _, be := range backends {
			if _, ok := rawGet(t, be, "t", "ghost"); ok {
				return false
			}
		}
		return true
	})
	if st := s.Stats(ctx); st.TombstonesGCed < 1 {
		t.Fatalf("TombstonesGCed = %d, want >= 1", st.TombstonesGCed)
	}
}

// TestAntiEntropyRespectsRingPlacement: at replication factor < nodes, each
// node legitimately lacks the keys it doesn't replicate. The loop must not
// "repair" those onto it.
func TestAntiEntropyRespectsRingPlacement(t *testing.T) {
	s, backends := openRepair(t, 3, 2, fastAE())
	ctx := context.Background()

	for i := 0; i < 32; i++ {
		if err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Give the loop time to run several full pair rotations.
	waitFor(t, "several sync rounds", func() bool { return s.Stats(ctx).AESyncs >= 6 })

	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%02d", i)
		holders := map[int]bool{}
		for _, nd := range s.ring.replicas(key, 2) {
			holders[nd] = true
		}
		for node, be := range backends {
			if _, ok := rawGet(t, be, "t", key); ok != holders[node] {
				t.Fatalf("node %d holds %q: %v, ring says %v", node, key, ok, holders[node])
			}
		}
	}
}

// TestAntiEntropySkipsDownNodes: a pair with a down node is skipped, and
// divergence created while it was down is repaired once it returns — even
// with hints off, so the AE loop is the only path home.
func TestAntiEntropySkipsDownNodes(t *testing.T) {
	s, backends := openRepair(t, 3, 3, fastAE())
	ctx := context.Background()

	if err := s.Put(ctx, "t", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNodeUp(2, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "t", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Let the loop spin against the downed node; it must keep syncing the
	// live pair without error and without touching node 2's backend.
	waitFor(t, "sync rounds with a node down", func() bool { return s.Stats(ctx).AESyncs >= 3 })
	if raw := mustRaw(t, backends[2], "t", "k"); string(raw[EnvelopeOverhead:]) != "v1" {
		t.Fatalf("downed node was written to: %q", raw)
	}
	if err := s.SetNodeUp(2, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "returned node caught up by anti-entropy", func() bool {
		return rawEqual(t, backends[0], backends[2], "t", "k")
	})
	if raw := mustRaw(t, backends[2], "t", "k"); string(raw[EnvelopeOverhead:]) != "v2" {
		t.Fatalf("node 2 = %q after catch-up, want v2", raw)
	}
}

// TestAntiEntropyCollectsOrphanTombstone pins the liveness of the
// (tombstone, nothing) pair — the shape a wiped-and-restored replica or a
// process restart leaves behind, since ack tracking is in-memory. The
// repair writer rightly refuses to write a tombstone over nothing, so
// before the observeTombstone path this key re-diffed on every sweep
// forever: AEKeysRepaired climbed without bound while no write ever
// happened and the tombstone was never collected. Now the loop must (a)
// collect the orphan through the TTL fallback once all replicas agree,
// and (b) count zero key repairs while doing it.
func TestAntiEntropyCollectsOrphanTombstone(t *testing.T) {
	opts := fastAE()
	opts.TombstoneTTL = time.Millisecond
	s, backends := openRepair(t, 3, 3, opts)
	ctx := context.Background()

	// The orphan: planted straight into one backend with an ancient
	// timestamp, as if written by a previous process whose tracker died.
	// This store has no tombWait entry for it, so ack-based GC can never
	// fire — only the TTL observation can.
	if err := backends[0].Put(ctx, "t", "ghost", envelope(envTombstone, 1, nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "orphan tombstone collected", func() bool {
		_, ok := rawGet(t, backends[0], "t", "ghost")
		return !ok && s.Stats(ctx).TombstonesGCed >= 1
	})
	// Refused repairs must not be counted: nothing here was repairable.
	if got := s.Stats(ctx).AEKeysRepaired; got != 0 {
		t.Fatalf("AEKeysRepaired = %d, want 0 (a tombstone-vs-absent pair is not a repair)", got)
	}
}
