package kvstore

import (
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes, mapping keys to
// replica sets.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

const vnodesPerNode = 128

func newRing(nodes int) *ring {
	r := &ring{nodes: nodes}
	r.points = make([]ringPoint, 0, nodes*vnodesPerNode)
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodesPerNode; v++ {
			// splitmix64 finalizer: uniform vnode placement regardless of
			// how similar the (node, vnode) inputs are.
			h := mix64(uint64(n)<<32 | uint64(v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// replicas returns the first rf distinct nodes clockwise from the key's hash
// position, in preference order.
func (r *ring) replicas(key string, rf int) []int {
	if rf > r.nodes {
		rf = r.nodes
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]int, 0, rf)
	seen := make(map[int]struct{}, rf)
	for len(out) < rf {
		p := r.points[i]
		if _, ok := seen[p.node]; !ok {
			seen[p.node] = struct{}{}
			out = append(out, p.node)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// primary returns the first replica node for a key.
func (r *ring) primary(key string) int {
	return r.replicas(key, 1)[0]
}

// hashString positions a key on the ring. Raw FNV-64a clusters keys that
// share a prefix and differ only in a trailing counter (the store's chunk
// keys "c%08x", delta keys "d%08x", …): the final byte perturbs the hash by
// at most ~2^46, far less than the ~2^55 average gap between ring points, so
// whole key families would collapse onto one node. The splitmix64 finalizer
// restores avalanche over all 64 bits.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}
