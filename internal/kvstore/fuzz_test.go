package kvstore

import (
	"bytes"
	"errors"
	"testing"

	"rstore/internal/types"
)

// Decoder hardening: a stored value read back from any backend (or a
// remote node) must never panic the envelope parser, must fail only with
// ErrCorrupt, and anything it accepts must round-trip through envelope.

func FuzzUnenvelope(f *testing.F) {
	f.Add(envelope(envValue, 12345, []byte("payload")))
	f.Add(envelope(envTombstone, 1, nil))
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0}) // unknown flag byte
	f.Add([]byte{0, 1, 2, 3})                // truncated envelope
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, ts, tombstone, err := unenvelope(data)
		if err != nil {
			if !errors.Is(err, types.ErrCorrupt) {
				t.Fatalf("rejection is not classified as corruption: %v", err)
			}
			return
		}
		flag := byte(envValue)
		if tombstone {
			flag = envTombstone
		}
		if !bytes.Equal(envelope(flag, ts, payload), data) {
			t.Fatalf("accepted envelope does not round-trip (ts=%d tombstone=%v)", ts, tombstone)
		}
	})
}
