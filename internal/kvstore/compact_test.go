package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestClusterCompact: Store.Compact fans out to every disklog node, the
// Stats reclaim fields account for it, and reads are unchanged.
func TestClusterCompact(t *testing.T) {
	ctx := context.Background()
	s, err := Open(context.Background(), Config{Nodes: 3, ReplicationFactor: 2, Engine: EngineDisklog, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Overwrite-heavy: every key rewritten five times through the fsynced
	// batch path, then a tenth deleted.
	const nKeys = 200
	for rev := 0; rev < 5; rev++ {
		entries := make([]Entry, nKeys)
		for i := range entries {
			entries[i] = Entry{
				Key:   fmt.Sprintf("k%04d", i),
				Value: []byte(fmt.Sprintf("rev-%d %s", rev, strings.Repeat("x", 64))),
			}
		}
		if err := s.BatchPut(ctx, "t", entries); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nKeys/10; i++ {
		if err := s.Delete(ctx, "t", fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatal(err)
		}
	}

	want := make(map[string][]byte)
	for i := nKeys / 10; i < nKeys; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, err := s.Get(ctx, "t", k)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}

	before := s.Stats(ctx)
	if before.DiskBytes == 0 || before.LiveRatio > 0.5 {
		t.Fatalf("workload not dead-heavy enough: disk=%d live ratio=%.2f", before.DiskBytes, before.LiveRatio)
	}
	reclaimed, err := s.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats(ctx)
	if after.DiskBytes > before.DiskBytes/2 {
		t.Fatalf("cluster compact reclaimed too little: %d -> %d disk bytes", before.DiskBytes, after.DiskBytes)
	}
	// (No exact disk-delta check: background tombstone GC appends its own
	// records between the two Stats snapshots.)
	if reclaimed <= 0 {
		t.Fatalf("Compact reported %d reclaimed", reclaimed)
	}
	if after.CompactedBytes != reclaimed {
		t.Fatalf("CompactedBytes = %d, want %d", after.CompactedBytes, reclaimed)
	}
	if after.LiveRatio <= before.LiveRatio {
		t.Fatalf("live ratio did not improve: %.2f -> %.2f", before.LiveRatio, after.LiveRatio)
	}
	for k, wv := range want {
		v, err := s.Get(ctx, "t", k)
		if err != nil || !bytes.Equal(v, wv) {
			t.Fatalf("%s changed across compaction: %q %v", k, v, err)
		}
	}
}

// TestClusterCompactMemoryIsNoop: a pure memory cluster has nothing on disk;
// Compact must skip every node instead of erroring, and the reclaim stats
// stay zero (LiveRatio reports 1 — nothing is dead).
func TestClusterCompactMemoryIsNoop(t *testing.T) {
	ctx := context.Background()
	s, err := Open(context.Background(), Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(ctx, "t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	reclaimed, err := s.Compact(ctx)
	if err != nil || reclaimed != 0 {
		t.Fatalf("memory cluster Compact = %d, %v", reclaimed, err)
	}
	st := s.Stats(ctx)
	if st.DiskBytes != 0 || st.CompactedBytes != 0 || st.LiveRatio != 1 {
		t.Fatalf("memory cluster reclaim stats: %+v", st)
	}
}
