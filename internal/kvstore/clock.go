package kvstore

import "time"

// walltime is the package's single wall-clock seam. Every timestamp that
// feeds LWW ordering, envelope stamps, or repair/hint scheduling is taken
// through it so tests (and future hybrid-clock work) can substitute a
// deterministic clock in one place; rstore-vet's clockseam analyzer rejects
// direct time.Now calls elsewhere in the package.
var walltime = time.Now
