package kvstore

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"rstore/internal/engine"
	"rstore/internal/engine/remote"
)

// transport is what a node routes every operation through: a local backend
// fronted by the failure-injection flag, or a remote storage node reached
// over the wire. The seam keeps the Store's routing logic identical for
// both — a node being "down" is one error class (engine.ErrUnavailable)
// whether it comes from an injected flag or a refused connection.
type transport interface {
	// The replication layer deletes by writing LWW tombstones (see
	// lww.go); del is the physical removal beneath that model, used only
	// by the repair subsystem (tombstone GC, hint-log cleanup — see
	// repair.go), never to delete user data directly.
	put(ctx context.Context, table, key string, value []byte) error
	get(ctx context.Context, table, key string) ([]byte, bool, error)
	// multiGet reads many keys in one call: values and presence flags in
	// request order. Over the wire this is a single round trip (OpMultiGet);
	// locally it serves straight from the backend. All-or-nothing: a failing
	// node fails the whole batch, never returns partial results.
	multiGet(ctx context.Context, table string, keys []string) ([][]byte, []bool, error)
	del(ctx context.Context, table, key string) error
	batchPut(ctx context.Context, table string, entries []engine.Entry) error
	// scan visits every key/value of a table. Values passed to fn may alias
	// transport-internal buffers; fn must not retain or mutate them.
	scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error
	tables(ctx context.Context) ([]string, error)
	// stored reports resident bytes; unavailable nodes error instead of
	// blocking on (or lying about) storage they cannot see.
	stored(ctx context.Context) (int64, error)
	// compact reclaims dead storage on the node and returns the
	// post-compaction stats; compactStats reads them without compacting.
	// Nodes whose backend does not implement engine.Compactor return
	// engine.ErrNoCompaction.
	compact(ctx context.Context) (engine.CompactionStats, error)
	compactStats(ctx context.Context) (engine.CompactionStats, error)
	// reset wipes the node's backend empty (engine.Resetter). Nodes whose
	// backend does not implement it return engine.ErrNoReset.
	reset(ctx context.Context) error
	// hashTree and hashRange serve the anti-entropy digest exchange
	// (engine.HashRanger): a fanout-bucket hash tree of one table, and the
	// key/entry-hash listing of one bucket. Nodes whose backend does not
	// implement it return engine.ErrNoHashRange.
	hashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error)
	hashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error)
	// available is a cheap best-effort liveness hint used to pick read
	// replicas; the authoritative signal is an ErrUnavailable result.
	available() bool
	// injectFault forces the node down/up for failure-injection tests.
	injectFault(up bool) error
	// breakerStats reports the node's failure-detector state; ok is false
	// for transports without one (local nodes fail via the injection flag,
	// not a breaker).
	breakerStats() (remote.BreakerStats, bool)
	close() error
}

// errNodeDown reports an operation against a node marked down by failure
// injection. It is one cause of unavailability — real transports produce
// others (connection refused, node process gone) — and the Store routes
// around all of them uniformly via isUnavailable.
var errNodeDown = fmt.Errorf("kvstore: node down (injected): %w", engine.ErrUnavailable)

// isUnavailable classifies an error as transient node unavailability:
// routed around by replication rather than surfaced, in contrast to hard
// engine errors (corruption, I/O failure), which abort the operation.
func isUnavailable(err error) bool { return errors.Is(err, engine.ErrUnavailable) }

// localTransport fronts an in-process engine.Backend with the up/down flag
// of failure-injection tests.
type localTransport struct {
	mu sync.RWMutex // guards up
	up bool
	be engine.Backend
}

func newLocalTransport(be engine.Backend) *localTransport {
	return &localTransport{up: true, be: be}
}

func (t *localTransport) gate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.up {
		return errNodeDown
	}
	return nil
}

func (t *localTransport) put(ctx context.Context, table, key string, value []byte) error {
	if err := t.gate(); err != nil {
		return err
	}
	return t.be.Put(ctx, table, key, value)
}

func (t *localTransport) get(ctx context.Context, table, key string) ([]byte, bool, error) {
	if err := t.gate(); err != nil {
		return nil, false, err
	}
	return t.be.Get(ctx, table, key)
}

func (t *localTransport) multiGet(ctx context.Context, table string, keys []string) ([][]byte, []bool, error) {
	if err := t.gate(); err != nil {
		return nil, nil, err
	}
	if mg, ok := t.be.(engine.MultiGetter); ok {
		return mg.MultiGet(ctx, table, keys)
	}
	values := make([][]byte, len(keys))
	present := make([]bool, len(keys))
	for i, k := range keys {
		v, ok, err := t.be.Get(ctx, table, k)
		if err != nil {
			return nil, nil, err
		}
		values[i], present[i] = v, ok
	}
	return values, present, nil
}

func (t *localTransport) del(ctx context.Context, table, key string) error {
	if err := t.gate(); err != nil {
		return err
	}
	return t.be.Delete(ctx, table, key)
}

func (t *localTransport) batchPut(ctx context.Context, table string, entries []engine.Entry) error {
	if err := t.gate(); err != nil {
		return err
	}
	return t.be.BatchPut(ctx, table, entries)
}

func (t *localTransport) scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	if err := t.gate(); err != nil {
		return err
	}
	return t.be.Scan(ctx, table, fn)
}

func (t *localTransport) tables(ctx context.Context) ([]string, error) {
	if err := t.gate(); err != nil {
		return nil, err
	}
	return t.be.Tables(ctx)
}

func (t *localTransport) stored(context.Context) (int64, error) {
	// The gate applies here too: a down node's storage must not be
	// touched — with a real dead backend the call could block or fault.
	if err := t.gate(); err != nil {
		return 0, err
	}
	return t.be.BytesStored(), nil
}

func (t *localTransport) compact(ctx context.Context) (engine.CompactionStats, error) {
	if err := t.gate(); err != nil {
		return engine.CompactionStats{}, err
	}
	c, ok := t.be.(engine.Compactor)
	if !ok {
		return engine.CompactionStats{}, engine.ErrNoCompaction
	}
	return c.Compact(ctx)
}

func (t *localTransport) compactStats(ctx context.Context) (engine.CompactionStats, error) {
	if err := t.gate(); err != nil {
		return engine.CompactionStats{}, err
	}
	c, ok := t.be.(engine.Compactor)
	if !ok {
		return engine.CompactionStats{}, engine.ErrNoCompaction
	}
	return c.CompactionStats(ctx)
}

func (t *localTransport) reset(ctx context.Context) error {
	if err := t.gate(); err != nil {
		return err
	}
	r, ok := t.be.(engine.Resetter)
	if !ok {
		return engine.ErrNoReset
	}
	return r.Reset(ctx)
}

func (t *localTransport) hashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	if err := t.gate(); err != nil {
		return engine.TreeDigest{}, err
	}
	hr, ok := t.be.(engine.HashRanger)
	if !ok {
		return engine.TreeDigest{}, engine.ErrNoHashRange
	}
	return hr.HashTree(ctx, table, fanout)
}

func (t *localTransport) hashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error) {
	if err := t.gate(); err != nil {
		return nil, err
	}
	hr, ok := t.be.(engine.HashRanger)
	if !ok {
		return nil, engine.ErrNoHashRange
	}
	return hr.HashRange(ctx, table, fanout, bucket)
}

func (t *localTransport) available() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.up
}

func (t *localTransport) injectFault(up bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.up = up
	return nil
}

func (t *localTransport) breakerStats() (remote.BreakerStats, bool) {
	return remote.BreakerStats{}, false
}

func (t *localTransport) close() error { return t.be.Close() }

// remoteTransport routes a node's operations to a storage daemon over TCP.
// Liveness is discovered per operation (the client retries and classifies),
// so there is no flag to flip: failure injection means killing the real
// process.
type remoteTransport struct {
	c *remote.Client
}

func (t *remoteTransport) put(ctx context.Context, table, key string, value []byte) error {
	return t.c.Put(ctx, table, key, value)
}

func (t *remoteTransport) get(ctx context.Context, table, key string) ([]byte, bool, error) {
	return t.c.Get(ctx, table, key)
}

func (t *remoteTransport) multiGet(ctx context.Context, table string, keys []string) ([][]byte, []bool, error) {
	return t.c.MultiGet(ctx, table, keys)
}

func (t *remoteTransport) del(ctx context.Context, table, key string) error {
	return t.c.Delete(ctx, table, key)
}

func (t *remoteTransport) batchPut(ctx context.Context, table string, entries []engine.Entry) error {
	return t.c.BatchPut(ctx, table, entries)
}

func (t *remoteTransport) scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	return t.c.Scan(ctx, table, fn)
}

func (t *remoteTransport) tables(ctx context.Context) ([]string, error) { return t.c.Tables(ctx) }

func (t *remoteTransport) stored(ctx context.Context) (int64, error) { return t.c.Stored(ctx) }

func (t *remoteTransport) compact(ctx context.Context) (engine.CompactionStats, error) {
	return t.c.Compact(ctx)
}

func (t *remoteTransport) compactStats(ctx context.Context) (engine.CompactionStats, error) {
	return t.c.CompactionStats(ctx)
}

func (t *remoteTransport) reset(ctx context.Context) error { return t.c.Reset(ctx) }

func (t *remoteTransport) hashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	return t.c.HashTree(ctx, table, fanout)
}

func (t *remoteTransport) hashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error) {
	return t.c.HashRange(ctx, table, fanout, bucket)
}

// available reflects the wire client's failure detector: a node in
// probation (circuit breaker open) is reported down so read placement
// steers around it, a node not in probation is optimistically up. The
// authoritative signal is still the per-operation result — the read paths
// all fall back across replicas when an attempt comes back unavailable.
func (t *remoteTransport) available() bool { return !t.c.BreakerOpen() }

func (t *remoteTransport) injectFault(bool) error {
	return fmt.Errorf("kvstore: failure injection is not supported for remote node %s (stop the daemon instead)", t.c.Addr())
}

func (t *remoteTransport) breakerStats() (remote.BreakerStats, bool) {
	return t.c.BreakerStats(), true
}

func (t *remoteTransport) close() error { return t.c.Close() }

// SplitNodeAddrs parses a comma-separated daemon address list into
// Config.NodeAddrs form, trimming whitespace and dropping empty elements.
// The CLIs share it so -node-addrs handling cannot diverge.
func SplitNodeAddrs(list string) []string {
	var out []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
