// Package kvstore implements the distributed key-value substrate that RStore
// layers on (paper §2.4 "Backend Key-value Store"). It reproduces the
// properties RStore depends on — basic get/put, key partitioning across
// nodes, replication, parallel multi-key fetch — as a cluster of storage
// nodes behind a consistent-hash ring. Each node routes through a transport:
// local (an in-process engine.Backend plus a failure-injection gate, with a
// calibrated network cost model driving a virtual clock so experiments
// report Cassandra-like retrieval times deterministically) or remote (the
// wire client from internal/engine/remote against a real rstore-node
// daemon).
//
// # Replication, LWW envelopes, and repair
//
// Every value the cluster stores is wrapped in a 9-byte last-write-wins
// envelope (flag + timestamp; deletes are tombstones — see lww.go and
// docs/FORMATS.md), so a replica that was down while its peers accepted
// writes is outvoted on read instead of serving stale bytes. The repair
// subsystem (repair.go) then converges losers on disk: read repair writes
// the winning envelope back to stale live replicas, hinted handoff parks
// writes for down replicas in the durable !hints table and replays them on
// recovery, and fully-acknowledged tombstones are physically collected.
//
// # One logical writer per cluster
//
// A Store assumes it is the only cluster client mutating its backends: the
// engine seam has no compare-and-swap, so the read-then-write sequences
// repair and tombstone GC issue would interleave under concurrent writing
// clients (see the internal/engine package comment). Deployments enforce
// this with the disklog directory flock locally and by convention (one
// rstore-server per daemon set) remotely; the !cluster table pins each
// daemon's ring position, the cluster shape, and the replication factor so
// a client opening with a reordered/resized address list or a different
// -rf is refused instead of silently corrupting placement or replication.
//
// # Value ownership
//
// Get and MultiGet return private copies the caller may retain and mutate.
// Scan hands the callback values that may alias backend buffers — copy
// before retaining (the envelopes are stripped either way). Entry values
// passed to Put/BatchPut are not retained after the call returns.
//
// # Storage reclaim
//
// Backends that implement engine.Compactor (disklog, locally or behind a
// daemon) expose their dead-byte accounting through Stats (DiskBytes,
// LiveBytes, LiveRatio, CompactedBytes) and are compacted cluster-wide by
// Store.Compact; engines without compaction are skipped.
package kvstore
