package kvstore

import (
	"context"
	"fmt"
	"testing"
)

func benchStore(b *testing.B, nodes, rf int, balance bool) (*Store, []string) {
	b.Helper()
	s, err := Open(context.Background(), Config{
		Nodes: nodes, ReplicationFactor: rf, ReadBalance: balance,
		Cost: DefaultCostModel(),
	})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1000)
	val := make([]byte, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d", i)
		if err := s.Put(context.Background(), "t", keys[i], val); err != nil {
			b.Fatal(err)
		}
	}
	return s, keys
}

func BenchmarkGet(b *testing.B) {
	s, keys := benchStore(b, 4, 2, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(context.Background(), "t", keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	s, _ := benchStore(b, 4, 2, false)
	val := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(context.Background(), "t", fmt.Sprintf("w-%d", i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiGet(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		balance bool
	}{{"primary", false}, {"balanced", true}} {
		s, keys := benchStore(b, 8, 3, cfg.balance)
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := s.MultiGet(context.Background(), "t", keys)
				if err != nil || len(res.Missing) != 0 {
					b.Fatalf("%v %v", res.Missing, err)
				}
			}
		})
	}
}

func BenchmarkSnapshotDump(b *testing.B) {
	s, _ := benchStore(b, 4, 1, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Dump(context.Background(), discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
