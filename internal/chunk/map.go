package chunk

import (
	"fmt"
	"sort"

	"rstore/internal/bitset"
	"rstore/internal/codec"
	"rstore/internal/types"
)

// Map is the chunk map M_Ci of paper §2.4: for one chunk, it records which
// of the chunk's record slots belong to each version. A slot is a record's
// position in the chunk's flattened layout (items in order, members within
// each item in order). In aggregate the chunk maps carry exactly the
// information of the full key×version×chunk matrix, exploiting its sparsity
// with per-version bitmaps.
type Map struct {
	// NumSlots is the number of record slots in the chunk.
	NumSlots int
	// Versions maps a version id to the bitmap of slots that belong to it.
	Versions map[types.VersionID]*bitset.BitSet
}

// NewMap returns an empty map for a chunk with the given slot count.
func NewMap(numSlots int) *Map {
	return &Map{NumSlots: numSlots, Versions: make(map[types.VersionID]*bitset.BitSet)}
}

// Add marks slot as belonging to version v.
func (m *Map) Add(v types.VersionID, slot uint32) {
	b, ok := m.Versions[v]
	if !ok {
		b = bitset.New(m.NumSlots)
		m.Versions[v] = b
	}
	b.Set(slot)
}

// SlotsOf returns the slots belonging to version v (nil if the version has
// no records in this chunk). The bitmap is shared; callers must not mutate.
func (m *Map) SlotsOf(v types.VersionID) *bitset.BitSet { return m.Versions[v] }

// MVKey renders a chunk id as the chunk-map table key.
func MVKey(id ID) string { return fmt.Sprintf("m%08x", id) }

// AppendBinary serializes the map: slot count, version count, then sorted
// (version, bitmap) pairs. Bitmaps self-select dense/sparse encoding.
func (m *Map) AppendBinary(buf []byte) []byte {
	buf = codec.PutUvarint(buf, uint64(m.NumSlots))
	buf = codec.PutUvarint(buf, uint64(len(m.Versions)))
	vids := make([]types.VersionID, 0, len(m.Versions))
	for v := range m.Versions {
		vids = append(vids, v)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, v := range vids {
		buf = codec.PutUvarint(buf, uint64(v))
		buf = m.Versions[v].AppendBinary(buf)
	}
	return buf
}

// DecodeMap reverses AppendBinary.
func DecodeMap(buf []byte) (*Map, error) {
	slots, rest, err := codec.Uvarint(buf)
	if err != nil {
		return nil, err
	}
	n, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	m := NewMap(int(slots))
	for i := uint64(0); i < n; i++ {
		var v uint64
		v, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		var b *bitset.BitSet
		b, rest, err = bitset.DecodeBinary(rest)
		if err != nil {
			return nil, err
		}
		m.Versions[types.VersionID(v)] = b
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after chunk map", types.ErrCorrupt, len(rest))
	}
	return m, nil
}
