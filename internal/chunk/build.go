package chunk

import (
	"fmt"

	"rstore/internal/bitset"
	"rstore/internal/codec"
	"rstore/internal/corpus"
	"rstore/internal/types"
)

// Loc records where a record physically lives: which chunk and which slot
// within it. The engine keeps a record→Loc catalog in memory to update chunk
// maps during online ingest (paper §4).
type Loc struct {
	Chunk ID
	Slot  uint32
}

// MembershipObserver receives one callback per (version, chunk) incidence
// while chunk maps are built, letting the caller construct the
// version→chunk projection in the same pass (§3.1 builds both together).
type MembershipObserver interface {
	ObserveVersionChunk(v types.VersionID, c ID)
}

// Built is the physical result of materializing an assignment: one payload
// and one chunk map per chunk, plus the record location catalog.
type Built struct {
	// Payloads[i] is the serialized payload of chunk i.
	Payloads [][]byte
	// Maps[i] is the chunk map of chunk i.
	Maps []*Map
	// Locs maps record id → location. Records never assigned (possible only
	// for records belonging to no version) have Chunk == NoChunk.
	Locs []Loc
	// Overfull counts chunks that exceeded the nominal capacity (allowed
	// within the slack budget; reported for the §2.5 overfill statistic).
	Overfull int
}

// NoChunk marks an unassigned record in Locs.
const NoChunk = ID(^uint32(0))

// Build materializes chunks from items and their chunk assignment.
// chunks[i] lists the item indexes placed in chunk i, in placement order.
// The observer may be nil.
func Build(c *corpus.Corpus, items []Item, chunks [][]uint32, obs MembershipObserver) (*Built, error) {
	b := &Built{
		Payloads: make([][]byte, len(chunks)),
		Maps:     make([]*Map, len(chunks)),
		Locs:     make([]Loc, c.NumRecords()),
	}
	for i := range b.Locs {
		b.Locs[i] = Loc{Chunk: NoChunk}
	}

	// Lay out payloads and assign slots.
	for cid, itemIdxs := range chunks {
		var buf []byte
		buf = codec.PutUvarint(buf, uint64(len(itemIdxs)))
		slot := uint32(0)
		for _, ii := range itemIdxs {
			if int(ii) >= len(items) {
				return nil, fmt.Errorf("chunk: assignment references item %d of %d", ii, len(items))
			}
			it := &items[ii]
			buf = append(buf, it.Encoded...)
			for _, rec := range it.Members {
				if b.Locs[rec].Chunk != NoChunk {
					return nil, fmt.Errorf("chunk: record %d assigned to chunks %d and %d", rec, b.Locs[rec].Chunk, cid)
				}
				b.Locs[rec] = Loc{Chunk: ID(cid), Slot: slot}
				slot++
			}
		}
		b.Payloads[cid] = buf
		b.Maps[cid] = NewMap(int(slot))
	}

	return b, b.fillMaps(c, obs)
}

// fillMaps walks the version tree once, adding each live record's slot to
// its chunk's map for every version, and notifying the observer once per
// (version, chunk).
func (b *Built) fillMaps(c *corpus.Corpus, obs MembershipObserver) error {
	var unassigned error
	c.ForEachVersion(func(v types.VersionID, members *bitset.BitSet) bool {
		seen := make(map[ID]struct{})
		members.ForEach(func(rec uint32) bool {
			loc := b.Locs[rec]
			if loc.Chunk == NoChunk {
				unassigned = fmt.Errorf("chunk: record %d live in version %d but unassigned", rec, v)
				return false
			}
			b.Maps[loc.Chunk].Add(v, loc.Slot)
			if obs != nil {
				if _, ok := seen[loc.Chunk]; !ok {
					seen[loc.Chunk] = struct{}{}
					obs.ObserveVersionChunk(v, loc.Chunk)
				}
			}
			return true
		})
		return unassigned == nil
	})
	return unassigned
}

// DecodeChunk decodes a chunk payload into its items' records, flattened by
// slot.
func DecodeChunk(payload []byte) ([]types.Record, error) {
	n, rest, err := codec.Uvarint(payload)
	if err != nil {
		return nil, err
	}
	var out []types.Record
	for i := uint64(0); i < n; i++ {
		var it *DecodedItem
		it, rest, err = DecodeItem(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, it.Records...)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after chunk payload", types.ErrCorrupt, len(rest))
	}
	return out, nil
}
