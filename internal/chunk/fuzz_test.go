package chunk

import (
	"testing"
)

// Fuzz targets: every decoder must reject arbitrary input with an error —
// never panic, never loop. Seed corpora include valid encodings so the
// mutators explore near-valid space. `go test` runs the seeds; `go test
// -fuzz=FuzzDecodeChunk ./internal/chunk` explores further.

func FuzzDecodeChunk(f *testing.F) {
	c := miniCorpus(f)
	built, err := Build(c,
		[]Item{mustItem(f, c, 0), mustItem(f, c, 1), mustItem(f, c, 2), mustItem(f, c, 3)},
		[][]uint32{{0, 1}, {2, 3}}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(built.Payloads[0])
	f.Add(built.Payloads[1])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeChunk(data)
		if err == nil {
			// Valid decodes must produce self-consistent records.
			for _, r := range recs {
				_ = r.CK
				_ = r.Value
			}
		}
	})
}

func FuzzDecodeMap(f *testing.F) {
	m := NewMap(64)
	m.Add(1, 3)
	m.Add(1, 60)
	m.Add(9, 0)
	f.Add(m.AppendBinary(nil))
	f.Add([]byte{})
	f.Add([]byte{64, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeMap(data)
		if err == nil && got != nil {
			for v, b := range got.Versions {
				_ = v
				_ = b.Count()
			}
		}
	})
}

func FuzzDecodeItem(f *testing.F) {
	c := miniCorpus(f)
	enc, err := EncodeItem(c, []uint32{0, 2, 3}, []int32{-1, 0, 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, _, err := DecodeItem(data)
		if err == nil && dec != nil {
			for _, r := range dec.Records {
				_ = r.Value
			}
		}
	})
}
