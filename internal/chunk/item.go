// Package chunk implements RStore's physical storage unit (paper §2.4): the
// chunk — an approximately fixed-size group of records stored under one
// internally-generated chunk-id in the backing KVS — together with its chunk
// map M_Ci (the per-chunk slice of the key×version×chunk mapping of Fig 3),
// and the builder that materializes chunks from a partitioning assignment.
//
// Chunks are divided into sub-chunks: groups of records with the same
// primary key stored in compressed fashion (members are binary-delta-encoded
// against a parent member). A sub-chunk with a single record stores it raw.
package chunk

import (
	"fmt"
	"strconv"
	"strings"

	"rstore/internal/bdiff"
	"rstore/internal/codec"
	"rstore/internal/corpus"
	"rstore/internal/types"
)

// ID identifies a chunk. IDs are dense per build generation; the KVS key is
// derived via KVKey.
type ID = uint32

// KVKey renders a chunk id as the backing-store key, prefixed with the
// placement generation that assigned it. Ids restart at 0 on every full
// repartition, so without the epoch prefix a repartition would overwrite
// chunk entries in place and a crash mid-rewrite would strand the old
// manifest against new chunk contents; with it, each generation writes
// fresh keys and the manifest swap (which records the generation) is the
// atomic commit point. Load garbage-collects keys of superseded
// generations.
func KVKey(gen uint32, id ID) string { return fmt.Sprintf("g%08x-c%08x", gen, id) }

// ParseKVKey recovers the generation and chunk id from a KVKey.
func ParseKVKey(key string) (gen uint32, id ID, ok bool) {
	rest, found := strings.CutPrefix(key, "g")
	if !found {
		return 0, 0, false
	}
	gs, cs, found := strings.Cut(rest, "-c")
	if !found || len(gs) != 8 || len(cs) != 8 {
		return 0, 0, false
	}
	g, err := strconv.ParseUint(gs, 16, 32)
	if err != nil {
		return 0, 0, false
	}
	c, err := strconv.ParseUint(cs, 16, 32)
	if err != nil {
		return 0, 0, false
	}
	return uint32(g), ID(c), true
}

// Item is the unit the partitioning algorithms assign to chunks: a sub-chunk
// of one or more records sharing a primary key (paper §3.4). With
// compression disabled (k=1) every item holds exactly one record.
type Item struct {
	// CK is the representative composite key (the member whose record is
	// stored raw; all others are delta-encoded descendants).
	CK types.CompositeKey
	// Members are the record ids in the item. Members[0] is the
	// representative.
	Members []uint32
	// Parents[i] is the index within Members of the member that member i is
	// delta-encoded against; Parents[0] is -1 (raw). The parent relation
	// follows the version tree, so members form a connected subtree (§3.4).
	Parents []int32
	// Encoded is the serialized sub-chunk payload (record framing included).
	Encoded []byte
}

// PackedSize is the capacity charged when packing the item into a chunk.
func (it *Item) PackedSize() int { return len(it.Encoded) + itemOverhead }

// itemOverhead approximates per-item framing inside a chunk.
const itemOverhead = 4

// EncodeItem serializes a sub-chunk's records: the representative raw, every
// other member as a binary delta against its parent member. Records are
// resolved through the corpus.
func EncodeItem(c *corpus.Corpus, members []uint32, parents []int32) ([]byte, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("chunk: empty item")
	}
	if len(parents) != len(members) {
		return nil, fmt.Errorf("chunk: %d members but %d parents", len(members), len(parents))
	}
	var buf []byte
	buf = codec.PutUvarint(buf, uint64(len(members)))
	for i, id := range members {
		r := c.Record(id)
		buf = codec.PutCompositeKey(buf, r.CK)
		p := parents[i]
		if i == 0 {
			if p != -1 {
				return nil, fmt.Errorf("chunk: representative must have parent -1, got %d", p)
			}
			buf = codec.PutVarint(buf, -1)
			buf = codec.PutBytes(buf, r.Value)
			continue
		}
		if p < 0 || int(p) >= i {
			return nil, fmt.Errorf("chunk: member %d has invalid parent %d (parents must precede children)", i, p)
		}
		parentVal := c.Record(members[p]).Value
		delta := bdiff.Encode(nil, parentVal, r.Value)
		if len(delta) >= len(r.Value) {
			// Degenerate delta (incompressible payload): store raw,
			// flagged by parent -2.
			buf = codec.PutVarint(buf, -2)
			buf = codec.PutBytes(buf, r.Value)
		} else {
			buf = codec.PutVarint(buf, int64(p))
			buf = codec.PutBytes(buf, delta)
		}
	}
	return buf, nil
}

// DecodedItem is a decoded sub-chunk.
type DecodedItem struct {
	Records []types.Record
}

// DecodeItem reverses EncodeItem, materializing every member record. The
// remaining buffer is returned.
func DecodeItem(buf []byte) (*DecodedItem, []byte, error) {
	n, rest, err := codec.Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	out := &DecodedItem{Records: make([]types.Record, 0, n)}
	for i := uint64(0); i < n; i++ {
		var ck types.CompositeKey
		ck, rest, err = codec.CompositeKey(rest)
		if err != nil {
			return nil, nil, err
		}
		var p int64
		p, rest, err = codec.Varint(rest)
		if err != nil {
			return nil, nil, err
		}
		var body []byte
		body, rest, err = codec.Bytes(rest)
		if err != nil {
			return nil, nil, err
		}
		var value []byte
		switch {
		case p == -1 || p == -2:
			value = make([]byte, len(body))
			copy(value, body)
		case p >= 0 && int(p) < len(out.Records):
			value, err = bdiff.Apply(nil, out.Records[p].Value, body)
			if err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("%w: item member %d references parent %d", types.ErrCorrupt, i, p)
		}
		out.Records = append(out.Records, types.Record{CK: ck, Value: value})
	}
	return out, rest, nil
}

// SingleRecordItem wraps record id as a 1-member item (the k=1 case).
func SingleRecordItem(c *corpus.Corpus, id uint32) (Item, error) {
	enc, err := EncodeItem(c, []uint32{id}, []int32{-1})
	if err != nil {
		return Item{}, err
	}
	return Item{
		CK:      c.Record(id).CK,
		Members: []uint32{id},
		Parents: []int32{-1},
		Encoded: enc,
	}, nil
}
