package chunk

import (
	"bytes"
	"math/rand"
	"testing"

	"rstore/internal/corpus"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// miniCorpus builds a 3-version chain where key "doc" evolves (large,
// similar payloads — the sub-chunk case) and "other" stays put.
func miniCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v1)

	base := bytes.Repeat([]byte("lorem ipsum dolor sit amet "), 40)
	mod1 := append([]byte(nil), base...)
	copy(mod1[100:], "EDITED-SECTION-ONE")
	mod2 := append([]byte(nil), mod1...)
	copy(mod2[500:], "EDITED-SECTION-TWO")

	c := corpus.New(g)
	must := func(v types.VersionID, d *types.Delta) {
		t.Helper()
		if err := c.AddVersionDelta(v, d); err != nil {
			t.Fatal(err)
		}
	}
	must(v0, &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "doc", Version: 0}, Value: base},
		{CK: types.CompositeKey{Key: "other", Version: 0}, Value: []byte("tiny")},
	}})
	must(v1, &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "doc", Version: 1}, Value: mod1}},
		Dels: []types.CompositeKey{{Key: "doc", Version: 0}},
	})
	must(v2, &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "doc", Version: 2}, Value: mod2}},
		Dels: []types.CompositeKey{{Key: "doc", Version: 1}},
	})
	return c
}

func TestItemRoundTripSingle(t *testing.T) {
	c := miniCorpus(t)
	it, err := SingleRecordItem(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, rest, err := DecodeItem(it.Encoded)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.Records) != 1 || dec.Records[0].CK != c.Record(0).CK {
		t.Fatalf("decoded %+v", dec.Records)
	}
	if !bytes.Equal(dec.Records[0].Value, c.Record(0).Value) {
		t.Fatal("payload mismatch")
	}
}

func TestItemRoundTripDeltaChain(t *testing.T) {
	c := miniCorpus(t)
	// Members: doc@0 (id 0), doc@1 (id 2), doc@2 (id 3) — chain parents.
	members := []uint32{0, 2, 3}
	parents := []int32{-1, 0, 1}
	enc, err := EncodeItem(c, members, parents)
	if err != nil {
		t.Fatal(err)
	}
	dec, rest, err := DecodeItem(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v", err)
	}
	for i, id := range members {
		want := c.Record(id)
		if dec.Records[i].CK != want.CK || !bytes.Equal(dec.Records[i].Value, want.Value) {
			t.Fatalf("member %d mismatch", i)
		}
	}
	// Compression: the chain must be far smaller than raw members.
	raw := 0
	for _, id := range members {
		raw += len(c.Record(id).Value)
	}
	if len(enc) > raw*2/3 {
		t.Fatalf("encoded %d bytes vs raw %d: no compression", len(enc), raw)
	}
}

func TestItemIncompressibleFallsBackToRaw(t *testing.T) {
	// Two unrelated random payloads: delta ≥ raw, the encoder must store
	// raw (-2 parent marker) and still round-trip.
	g := vgraph.New()
	v0, _ := g.AddRoot()
	c := corpus.New(g)
	rng := rand.New(rand.NewSource(8))
	a := make([]byte, 500)
	b := make([]byte, 500)
	rng.Read(a)
	rng.Read(b)
	err := c.AddVersionDelta(v0, &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "k", Version: 0}, Value: a},
		{CK: types.CompositeKey{Key: "k2", Version: 0}, Value: b},
	}})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeItem(c, []uint32{0, 1}, []int32{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecodeItem(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Records[1].Value, b) {
		t.Fatal("raw fallback round trip failed")
	}
}

func TestEncodeItemValidation(t *testing.T) {
	c := miniCorpus(t)
	if _, err := EncodeItem(c, nil, nil); err == nil {
		t.Error("empty item accepted")
	}
	if _, err := EncodeItem(c, []uint32{0}, []int32{0}); err == nil {
		t.Error("representative with non-nil parent accepted")
	}
	if _, err := EncodeItem(c, []uint32{0, 2}, []int32{-1, 5}); err == nil {
		t.Error("forward parent reference accepted")
	}
	if _, err := EncodeItem(c, []uint32{0, 2}, []int32{-1}); err == nil {
		t.Error("parents length mismatch accepted")
	}
}

func TestMapRoundTrip(t *testing.T) {
	m := NewMap(100)
	m.Add(3, 0)
	m.Add(3, 50)
	m.Add(7, 99)
	got, err := DecodeMap(m.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSlots != 100 || len(got.Versions) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if !got.SlotsOf(3).Contains(0) || !got.SlotsOf(3).Contains(50) || got.SlotsOf(3).Contains(1) {
		t.Fatal("version 3 slots")
	}
	if !got.SlotsOf(7).Contains(99) {
		t.Fatal("version 7 slots")
	}
	if got.SlotsOf(99) != nil {
		t.Fatal("unknown version has slots")
	}
	// Trailing bytes rejected.
	if _, err := DecodeMap(append(m.AppendBinary(nil), 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBuildRejectsDoubleAssignment(t *testing.T) {
	c := miniCorpus(t)
	items := make([]Item, c.NumRecords())
	for i := range items {
		it, err := SingleRecordItem(c, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		items[i] = it
	}
	_, err := Build(c, items, [][]uint32{{0, 1}, {1, 2, 3}}, nil)
	if err == nil {
		t.Fatal("item in two chunks accepted")
	}
}

func TestBuildRejectsUnassignedLiveRecord(t *testing.T) {
	c := miniCorpus(t)
	items := make([]Item, c.NumRecords())
	for i := range items {
		it, _ := SingleRecordItem(c, uint32(i))
		items[i] = it
	}
	// Record 0 (live in v0) left out.
	_, err := Build(c, items, [][]uint32{{1, 2, 3}}, nil)
	if err == nil {
		t.Fatal("unassigned live record accepted")
	}
}

func TestKVKeyFormats(t *testing.T) {
	if KVKey(0, 0) == KVKey(0, 1) {
		t.Fatal("chunk keys collide across ids")
	}
	if KVKey(0, 1) == KVKey(1, 1) {
		t.Fatal("chunk keys collide across generations")
	}
	if MVKey(1) == KVKey(0, 1) {
		t.Fatal("map key collides with chunk key")
	}
	gen, id, ok := ParseKVKey(KVKey(7, 0x1234))
	if !ok || gen != 7 || id != 0x1234 {
		t.Fatalf("ParseKVKey round trip: %d %d %v", gen, id, ok)
	}
	for _, bad := range []string{"", "c00000001", "g1-c2", "gzzzzzzzz-c00000001", "g00000001-c0000000g"} {
		if _, _, ok := ParseKVKey(bad); ok {
			t.Fatalf("ParseKVKey accepted %q", bad)
		}
	}
}

func TestDecodeChunkTrailing(t *testing.T) {
	c := miniCorpus(t)
	it, _ := SingleRecordItem(c, 0)
	built, err := Build(c, []Item{it, mustItem(t, c, 1), mustItem(t, c, 2), mustItem(t, c, 3)},
		[][]uint32{{0, 1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeChunk(built.Payloads[0])
	if err != nil || len(recs) != 4 {
		t.Fatalf("decode: %d records, %v", len(recs), err)
	}
	if _, err := DecodeChunk(append(built.Payloads[0], 7)); err == nil {
		t.Fatal("trailing payload bytes accepted")
	}
}

func mustItem(t testing.TB, c *corpus.Corpus, id uint32) Item {
	t.Helper()
	it, err := SingleRecordItem(c, id)
	if err != nil {
		t.Fatal(err)
	}
	return it
}
