package subchunk

import (
	"fmt"

	"rstore/internal/chunk"
	"rstore/internal/corpus"
	"rstore/internal/partition"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// transformTree derives the transformed version tree of Fig 7: versions are
// re-expressed in sub-chunk (item) space — an item is live at a version when
// at least one of its member records is — and versions whose item-level
// delta is empty are duplicates of their parent and dropped. The remaining
// versions, re-parented to their nearest kept ancestor and densely
// renumbered, form the instance the partitioning algorithms run on.
func transformTree(c *corpus.Corpus, items []chunk.Item, itemOf []uint32, capacity int) (*partition.Input, int, []types.VersionID, error) {
	g := c.Graph()
	n := g.NumVersions()

	// One apply/undo walk over the original tree computes each version's
	// item-level delta: member liveness counts per item; 0→1 transitions
	// are item adds, 1→0 are item dels. An item both deleted and re-added
	// within one version (a member replaced by another member of the same
	// sub-chunk — the Fig 7 V4 case) nets out to no change.
	itemAdds := make([][]uint32, n)
	itemDels := make([][]uint32, n)
	liveCount := make([]int32, len(items))

	var walk func(v types.VersionID)
	walk = func(v types.VersionID) {
		var adds, dels []uint32
		for _, rec := range c.Dels(v) {
			it := itemOf[rec]
			liveCount[it]--
			if liveCount[it] == 0 {
				dels = append(dels, it)
			}
		}
		for _, rec := range c.Adds(v) {
			it := itemOf[rec]
			liveCount[it]++
			if liveCount[it] == 1 {
				adds = append(adds, it)
			}
		}
		// Net out items that both died and revived within this version.
		adds, dels = cancelCommon(adds, dels)
		itemAdds[v], itemDels[v] = adds, dels

		for _, ch := range g.Children(v) {
			walk(ch)
		}
		for _, rec := range c.Adds(v) {
			liveCount[itemOf[rec]]--
		}
		for _, rec := range c.Dels(v) {
			liveCount[itemOf[rec]]++
		}
	}
	if n > 0 {
		walk(0)
	}

	// Keep versions with a non-empty item delta; the root is always kept.
	kept := make([]bool, n)
	newID := make([]types.VersionID, n)
	nearestKept := make([]types.VersionID, n)
	transformedOf := make([]types.VersionID, n)
	tg := vgraph.New()
	dropped := 0
	var tAdds, tDels [][]uint32
	for v := 0; v < n; v++ {
		vv := types.VersionID(v)
		if v == 0 {
			kept[0] = true
			nearestKept[0] = 0
			id, err := tg.AddRoot()
			if err != nil {
				return nil, 0, nil, err
			}
			newID[0] = id
			transformedOf[0] = id
			tAdds = append(tAdds, dedupSorted(itemAdds[0]))
			tDels = append(tDels, dedupSorted(itemDels[0]))
			continue
		}
		parent := g.Parent(vv)
		if len(itemAdds[v]) == 0 && len(itemDels[v]) == 0 {
			// Duplicate of its parent in item space (Fig 7's V4/V6).
			kept[v] = false
			nearestKept[v] = nearestKept[parent]
			transformedOf[v] = newID[nearestKept[parent]]
			dropped++
			continue
		}
		kept[v] = true
		nearestKept[v] = vv
		tp := newID[nearestKept[parent]]
		id, err := tg.AddVersion(tp)
		if err != nil {
			return nil, 0, nil, err
		}
		newID[v] = id
		transformedOf[v] = id
		tAdds = append(tAdds, dedupSorted(itemAdds[v]))
		tDels = append(tDels, dedupSorted(itemDels[v]))
	}

	in := &partition.Input{
		Graph:    tg,
		Items:    items,
		Adds:     tAdds,
		Dels:     tDels,
		Capacity: capacity,
	}
	if err := in.Validate(); err != nil {
		return nil, 0, nil, fmt.Errorf("subchunk: transformed instance invalid: %w", err)
	}
	return in, dropped, transformedOf, nil
}

// cancelCommon removes ids present in both lists (multiset-safe: ids appear
// at most once per list because liveness transitions fire once per version).
func cancelCommon(a, b []uint32) ([]uint32, []uint32) {
	if len(a) == 0 || len(b) == 0 {
		return a, b
	}
	inB := make(map[uint32]struct{}, len(b))
	for _, x := range b {
		inB[x] = struct{}{}
	}
	var outA []uint32
	removed := make(map[uint32]struct{})
	for _, x := range a {
		if _, ok := inB[x]; ok {
			removed[x] = struct{}{}
			continue
		}
		outA = append(outA, x)
	}
	if len(removed) == 0 {
		return a, b
	}
	var outB []uint32
	for _, x := range b {
		if _, ok := removed[x]; !ok {
			outB = append(outB, x)
		}
	}
	return outA, outB
}

// dedupSorted sorts and deduplicates an id list in place semantics.
func dedupSorted(ids []uint32) []uint32 {
	if len(ids) < 2 {
		return ids
	}
	// Insertion sort: lists are small and nearly sorted (ids discovered in
	// record-id order within a version).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
