// Package subchunk implements paper §3.4: grouping records that share a
// primary key into sub-chunks of at most k records (Algorithm 5), so that
// multiple versions of a large record are stored delta-compressed together,
// and deriving the transformed version tree (Fig 7) on which the chunk
// partitioning algorithms then run with sub-chunks as their items.
//
// Records grouped into a sub-chunk are "connected" in the version tree: the
// group is built around the record originated at the nearest common ancestor
// version, and every other member is delta-encoded against its parent in the
// group (§3.4: "all the sibling records would be delta-ed against their
// common parent").
package subchunk

import (
	"fmt"

	"rstore/internal/chunk"
	"rstore/internal/corpus"
	"rstore/internal/partition"
	"rstore/internal/types"
)

// Result carries the partitioning input built over sub-chunk items plus the
// compression statistics reported in Fig 10.
type Result struct {
	// In is the instance for the partitioning algorithms: items are
	// sub-chunks, the graph is the transformed version tree.
	In *partition.Input
	// RawBytes is the total uncompressed record payload volume.
	RawBytes int64
	// PackedBytes is the total encoded item volume.
	PackedBytes int64
	// DroppedVersions counts versions eliminated as duplicates during the
	// tree transformation (Fig 7: V4, V6).
	DroppedVersions int
	// ItemOf maps record id → item index.
	ItemOf []uint32
	// TransformedOf maps each original version to the transformed version
	// carrying its item set (itself if kept, else the nearest kept
	// ancestor). With k ≤ 1 it is the identity.
	TransformedOf []types.VersionID
}

// CompressionRatio returns raw/packed volume — the parallel-axis metric of
// Fig 10.
func (r *Result) CompressionRatio() float64 {
	if r.PackedBytes == 0 {
		return 0
	}
	return float64(r.RawBytes) / float64(r.PackedBytes)
}

// group is a pending connected set of records sharing one primary key,
// represented as a mini-tree: members[0] is the root (ancestor-most record)
// and parents[i] indexes each member's delta parent within the group.
type group struct {
	members []uint32
	parents []int32
}

func newGroup(rec uint32) *group {
	return &group{members: []uint32{rec}, parents: []int32{-1}}
}

func (g *group) size() int { return len(g.members) }

// absorb merges child groups under a new root record.
func absorb(root uint32, children []*group) *group {
	out := &group{members: []uint32{root}, parents: []int32{-1}}
	for _, ch := range children {
		off := int32(len(out.members))
		for i, m := range ch.members {
			out.members = append(out.members, m)
			p := ch.parents[i]
			if p == -1 {
				out.parents = append(out.parents, 0) // child root hangs off new root
			} else {
				out.parents = append(out.parents, p+off)
			}
		}
	}
	return out
}

// Build groups the corpus's records into sub-chunks with at most k records
// each and returns the transformed partitioning instance. k ≤ 1 disables
// compression (every record its own item, original tree: §2.5 Case 1).
func Build(c *corpus.Corpus, k, capacity int) (*Result, error) {
	if k <= 1 {
		in, err := partition.NewInputFromCorpus(c, capacity)
		if err != nil {
			return nil, err
		}
		res := &Result{In: in, ItemOf: make([]uint32, c.NumRecords())}
		for i := range res.ItemOf {
			res.ItemOf[i] = uint32(i)
		}
		res.TransformedOf = make([]types.VersionID, c.NumVersions())
		for v := range res.TransformedOf {
			res.TransformedOf[v] = types.VersionID(v)
		}
		for _, it := range in.Items {
			res.PackedBytes += int64(len(it.Encoded))
		}
		res.RawBytes = rawBytes(c)
		return res, nil
	}

	groups, err := buildGroups(c, k)
	if err != nil {
		return nil, err
	}
	items := make([]chunk.Item, 0, len(groups))
	itemOf := make([]uint32, c.NumRecords())
	var packed int64
	for gi, g := range groups {
		enc, err := chunk.EncodeItem(c, g.members, g.parents)
		if err != nil {
			return nil, err
		}
		items = append(items, chunk.Item{
			CK:      c.Record(g.members[0]).CK,
			Members: g.members,
			Parents: g.parents,
			Encoded: enc,
		})
		packed += int64(len(enc))
		for _, m := range g.members {
			itemOf[m] = uint32(gi)
		}
	}

	in, dropped, transformedOf, err := transformTree(c, items, itemOf, capacity)
	if err != nil {
		return nil, err
	}
	return &Result{
		In:              in,
		RawBytes:        rawBytes(c),
		PackedBytes:     packed,
		DroppedVersions: dropped,
		ItemOf:          itemOf,
		TransformedOf:   transformedOf,
	}, nil
}

func rawBytes(c *corpus.Corpus) int64 {
	var total int64
	for id := 0; id < c.NumRecords(); id++ {
		total += int64(len(c.Record(uint32(id)).Value))
	}
	return total
}

// buildGroups runs Algorithm 5: a bottom-up traversal of the version tree
// where each version gathers its children's pending per-key groups, merges
// them under a record originated here (e=1), passes them through (e=0), and
// emits the largest group as a sub-chunk whenever the pending volume for a
// key reaches k.
func buildGroups(c *corpus.Corpus, k int) ([]*group, error) {
	g := c.Graph()
	n := g.NumVersions()
	if c.NumVersions() != n {
		return nil, fmt.Errorf("subchunk: corpus has %d versions, graph %d", c.NumVersions(), n)
	}
	var emitted []*group

	// originated[v] = record ids whose sub-chunk grouping anchors at v: the
	// tree-delta adds (for merge re-adds, the record anchors where the tree
	// conversion renames it — but only on its first tree appearance).
	seen := make([]bool, c.NumRecords())
	originated := make([][]uint32, n)
	for _, v := range g.PreOrder() {
		for _, id := range c.Adds(v) {
			if !seen[id] {
				seen[id] = true
				originated[v] = append(originated[v], id)
			}
		}
	}

	type keyGroups map[uint32][]*group // key id → pending groups
	pending := make([]keyGroups, n)

	order := g.PostOrder()
	for _, v := range order {
		gather := make(keyGroups)
		for _, ch := range g.Children(v) {
			for ki, gs := range pending[ch] {
				gather[ki] = append(gather[ki], gs...)
			}
			pending[ch] = nil
		}
		// Records originated at v open their own entries.
		hasOwn := make(map[uint32]uint32) // key id → record id originated at v
		for _, id := range originated[v] {
			ki := c.KeyOf(id)
			if _, dup := hasOwn[ki]; dup {
				return nil, fmt.Errorf("subchunk: two records of key %q originate at version %d", c.Key(ki), v)
			}
			hasOwn[ki] = id
			if _, ok := gather[ki]; !ok {
				gather[ki] = nil
			}
		}

		up := make(keyGroups)
		for ki, gs := range gather {
			own, e := hasOwn[ki]
			gs, emitted = reduceKey(gs, e, own, k, emitted)
			if len(gs) > 0 {
				up[ki] = gs
			}
		}
		if v == 0 {
			// Nothing above the root: emit everything still pending.
			for _, gs := range up {
				emitted = append(emitted, gs...)
			}
			break
		}
		pending[v] = up
	}
	return emitted, nil
}

// reduceKey applies Algorithm 5's per-key conditions at one version: gs are
// the pending groups gathered from children, e reports whether a record of
// the key originated here (own), and the returned groups are what propagates
// to the parent.
func reduceKey(gs []*group, e bool, own uint32, k int, emitted []*group) ([]*group, []*group) {
	total := func() int {
		s := 0
		for _, g := range gs {
			s += g.size()
		}
		return s
	}
	popLargest := func() *group {
		li := 0
		for i := 1; i < len(gs); i++ {
			if gs[i].size() > gs[li].size() {
				li = i
			}
		}
		g := gs[li]
		gs = append(gs[:li], gs[li+1:]...)
		return g
	}

	if e {
		// Emit largest sets until the union with our own record fits.
		for total() > k-1 {
			emitted = append(emitted, popLargest())
		}
		if total() == k-1 {
			// Union makes exactly k: construct the sub-chunk now.
			emitted = append(emitted, absorb(own, gs))
			return nil, emitted
		}
		// s ≤ k-2: union and delay until the next ancestor.
		return []*group{absorb(own, gs)}, emitted
	}
	// e = 0: no union possible here; pass groups up, shedding the largest
	// while the pending volume is at least k.
	for total() >= k {
		emitted = append(emitted, popLargest())
	}
	return gs, emitted
}
