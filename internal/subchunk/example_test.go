package subchunk_test

import (
	"fmt"
	"strings"

	"rstore/internal/corpus"
	"rstore/internal/subchunk"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// Example groups three versions of one document into a single sub-chunk:
// the first revision stored raw, the others as binary deltas against their
// parent revision.
func Example() {
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v1)

	body := strings.Repeat("lorem ipsum dolor sit amet ", 30)
	base := []byte(`{"title":"intro","body":"` + body + `"}`)
	rev1 := []byte(`{"title":"intro","body":"` + body + ` EDITED"}`)
	rev2 := []byte(`{"title":"intro v2","body":"` + body + ` EDITED"}`)

	c := corpus.New(g)
	_ = c.AddVersionDelta(v0, &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "doc", Version: v0}, Value: base},
	}})
	_ = c.AddVersionDelta(v1, &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "doc", Version: v1}, Value: rev1}},
		Dels: []types.CompositeKey{{Key: "doc", Version: v0}},
	})
	_ = c.AddVersionDelta(v2, &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "doc", Version: v2}, Value: rev2}},
		Dels: []types.CompositeKey{{Key: "doc", Version: v1}},
	})

	res, _ := subchunk.Build(c, 3, 1<<20)
	fmt.Printf("sub-chunks: %d\n", len(res.In.Items))
	fmt.Printf("members: %d\n", len(res.In.Items[0].Members))
	fmt.Printf("compression ratio > 2: %v\n", res.CompressionRatio() > 2)
	// Output:
	// sub-chunks: 1
	// members: 3
	// compression ratio > 2: true
}
