package subchunk

import (
	"fmt"
	"sort"
	"testing"

	"rstore/internal/corpus"
	"rstore/internal/types"
	"rstore/internal/vgraph"
	"rstore/internal/workload"
)

func rec(k string, v types.VersionID) types.Record {
	return types.Record{CK: types.CompositeKey{Key: types.Key(k), Version: v}, Value: []byte(k + "-payload")}
}

func ck(k string, v types.VersionID) types.CompositeKey {
	return types.CompositeKey{Key: types.Key(k), Version: v}
}

// buildFig7 reproduces the paper's Fig 7(a) original version tree exactly:
// seven versions, keys K0–K5.
func buildFig7(t *testing.T) *corpus.Corpus {
	t.Helper()
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v1)
	v3, _ := g.AddVersion(v1)
	v4, _ := g.AddVersion(v2)
	v5, _ := g.AddVersion(v2)
	v6, _ := g.AddVersion(v3)
	_ = v4
	_ = v5
	_ = v6

	c := corpus.New(g)
	deltas := []*types.Delta{
		{Adds: []types.Record{rec("K0", 0), rec("K1", 0), rec("K2", 0), rec("K3", 0)}},
		{Adds: []types.Record{rec("K0", 1), rec("K2", 1)},
			Dels: []types.CompositeKey{ck("K0", 0), ck("K2", 0)}},
		{Adds: []types.Record{rec("K0", 2), rec("K3", 2)},
			Dels: []types.CompositeKey{ck("K0", 1), ck("K3", 0)}},
		{Adds: []types.Record{rec("K1", 3), rec("K4", 3)},
			Dels: []types.CompositeKey{ck("K1", 0)}},
		{Adds: []types.Record{rec("K0", 4), rec("K3", 4)},
			Dels: []types.CompositeKey{ck("K0", 2), ck("K3", 2)}},
		{Adds: []types.Record{rec("K1", 5), rec("K2", 5), rec("K3", 5), rec("K5", 5)},
			Dels: []types.CompositeKey{ck("K1", 0), ck("K2", 1), ck("K3", 2)}},
		{Adds: []types.Record{rec("K3", 6), rec("K2", 6)},
			Dels: []types.CompositeKey{ck("K3", 0), ck("K2", 1)}},
	}
	for v, d := range deltas {
		if err := c.AddVersionDelta(types.VersionID(v), d); err != nil {
			t.Fatalf("V%d: %v", v, err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFig7SubchunksExact asserts Algorithm 5 with k=3 produces exactly the
// paper's Fig 7(c) sub-chunk list (as sets, with the paper's representative
// composite keys).
func TestFig7SubchunksExact(t *testing.T) {
	c := buildFig7(t)
	res, err := Build(c, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]types.CompositeKey{ // representative → members
		"⟨K0,V1⟩": {ck("K0", 1), ck("K0", 2), ck("K0", 4)}, // SC0
		"⟨K0,V0⟩": {ck("K0", 0)},                           // SC1
		"⟨K1,V0⟩": {ck("K1", 0), ck("K1", 3), ck("K1", 5)}, // SC2
		"⟨K2,V1⟩": {ck("K2", 1), ck("K2", 5), ck("K2", 6)}, // SC3
		"⟨K2,V0⟩": {ck("K2", 0)},                           // SC4
		"⟨K3,V2⟩": {ck("K3", 2), ck("K3", 4), ck("K3", 5)}, // SC5
		"⟨K3,V0⟩": {ck("K3", 0), ck("K3", 6)},              // SC6
		"⟨K4,V3⟩": {ck("K4", 3)},                           // SC7
		"⟨K5,V5⟩": {ck("K5", 5)},                           // SC8
	}
	if len(res.In.Items) != len(want) {
		t.Fatalf("%d sub-chunks, want %d", len(res.In.Items), len(want))
	}
	for _, it := range res.In.Items {
		repr := fmt.Sprintf("⟨%s,V%d⟩", it.CK.Key, it.CK.Version)
		wantMembers, ok := want[repr]
		if !ok {
			t.Fatalf("unexpected sub-chunk with representative %s", repr)
		}
		var got []types.CompositeKey
		for _, id := range it.Members {
			got = append(got, c.Record(id).CK)
		}
		sortCKs(got)
		sortCKs(wantMembers)
		if len(got) != len(wantMembers) {
			t.Fatalf("%s: members %v, want %v", repr, got, wantMembers)
		}
		for i := range got {
			if got[i] != wantMembers[i] {
				t.Fatalf("%s: members %v, want %v", repr, got, wantMembers)
			}
		}
		// The representative is the first member.
		if c.Record(it.Members[0]).CK != it.CK {
			t.Fatalf("%s: representative not first member", repr)
		}
	}
}

// TestFig7TransformedTree asserts the Fig 7(b) transformation: V4 and V6 are
// duplicates and dropped; V5 re-parents under V2's transformed id; V5's
// item-level delta is exactly {+SC8}.
func TestFig7TransformedTree(t *testing.T) {
	c := buildFig7(t)
	res, err := Build(c, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedVersions != 2 {
		t.Fatalf("dropped %d versions, want 2 (V4, V6)", res.DroppedVersions)
	}
	tg := res.In.Graph
	if tg.NumVersions() != 5 {
		t.Fatalf("transformed tree has %d versions, want 5", tg.NumVersions())
	}
	// V4 maps to V2's transformed version, V6 to V3's.
	if res.TransformedOf[4] != res.TransformedOf[2] {
		t.Fatalf("V4 → %d, want V2's %d", res.TransformedOf[4], res.TransformedOf[2])
	}
	if res.TransformedOf[6] != res.TransformedOf[3] {
		t.Fatalf("V6 → %d, want V3's %d", res.TransformedOf[6], res.TransformedOf[3])
	}
	// V5 is kept, parented at transformed V2, and adds exactly one item
	// (SC8 = ⟨K5,V5⟩).
	t5 := res.TransformedOf[5]
	if tg.Parent(t5) != res.TransformedOf[2] {
		t.Fatalf("transformed V5 parent = %d, want transformed V2", tg.Parent(t5))
	}
	adds := res.In.Adds[t5]
	if len(adds) != 1 || len(res.In.Dels[t5]) != 0 {
		t.Fatalf("transformed V5 delta: +%v -%v, want one add", adds, res.In.Dels[t5])
	}
	if got := res.In.Items[adds[0]].CK; got != ck("K5", 5) {
		t.Fatalf("transformed V5 adds %v, want ⟨K5,V5⟩", got)
	}
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupConnectivity property: on generated datasets, every sub-chunk's
// member origins form a connected subgraph of the version tree (the §3.4
// constraint).
func TestGroupConnectivity(t *testing.T) {
	c, err := workload.Generate(workload.Spec{
		Name: "conn", Versions: 60, AvgDepth: 15, RecordsPerVersion: 80,
		UpdatePct: 0.3, Update: workload.RandomUpdate, RecordSize: 96, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 8} {
		res, err := Build(c, k, 1<<20)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		g := c.Graph()
		for ii, it := range res.In.Items {
			if len(it.Members) > k {
				t.Fatalf("k=%d: item %d has %d members", k, ii, len(it.Members))
			}
			// Each member's delta parent must be an ancestor (in the
			// version tree) of the member's origin: connectivity via the
			// parent chain.
			for mi := 1; mi < len(it.Members); mi++ {
				child := c.Record(it.Members[mi]).CK.Version
				parent := c.Record(it.Members[it.Parents[mi]]).CK.Version
				if !isAncestor(g, parent, child) {
					t.Fatalf("k=%d item %d: member %d origin V%d not descendant of its parent V%d",
						k, ii, mi, child, parent)
				}
			}
		}
	}
}

func isAncestor(g *vgraph.Graph, a, v types.VersionID) bool {
	for g.Depth(v) > g.Depth(a) {
		v = g.Parent(v)
	}
	return v == a
}

// TestEveryRecordInExactlyOneItem across k values on a generated dataset.
func TestEveryRecordInExactlyOneItem(t *testing.T) {
	c, err := workload.Generate(workload.Spec{
		Name: "cover", Versions: 40, AvgDepth: 10, RecordsPerVersion: 50,
		UpdatePct: 0.25, Update: workload.SkewedUpdate, RecordSize: 80, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 16, 100} {
		res, err := Build(c, k, 1<<20)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		seen := make([]int, c.NumRecords())
		for _, it := range res.In.Items {
			for _, m := range it.Members {
				seen[m]++
			}
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("k=%d: record %d in %d items", k, id, n)
			}
		}
		// ItemOf agrees with the item lists.
		for ii, it := range res.In.Items {
			for _, m := range it.Members {
				if res.ItemOf[m] != uint32(ii) {
					t.Fatalf("k=%d: ItemOf[%d] = %d, want %d", k, m, res.ItemOf[m], ii)
				}
			}
		}
	}
}

func sortCKs(cks []types.CompositeKey) {
	sort.Slice(cks, func(i, j int) bool { return cks[i].Less(cks[j]) })
}
