package baseline

import (
	"context"

	"sort"

	"rstore/internal/corpus"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// Single is the single-address-space layout (§2.2): every record is stored
// directly under its composite key. Ingest is trivial and storage is
// deduplicated, but no compression is possible and every retrieval needs the
// version-record index plus one request per record (the "too many queries"
// problem in its purest form).
type Single struct {
	KV *kvstore.Store

	c     *corpus.Corpus
	dels  [][]types.VersionID
	keys  []types.Key
	bytes int64
}

// TableSingle is the layout's KVS table.
const TableSingle = "bl_single"

// Name implements Engine.
func (s *Single) Name() string { return "SINGLE" }

// Build implements Engine.
func (s *Single) Build(c *corpus.Corpus) error {
	s.c = c
	s.dels = collectDeletePoints(c)
	s.keys = append([]types.Key(nil), c.Keys()...)
	sort.Slice(s.keys, func(i, j int) bool { return s.keys[i] < s.keys[j] })
	for id := 0; id < c.NumRecords(); id++ {
		r := c.Record(uint32(id))
		if err := s.KV.Put(context.Background(), TableSingle, ckKey(r.CK), r.Value); err != nil {
			return err
		}
		s.bytes += int64(len(r.Value))
	}
	return nil
}

func ckKey(ck types.CompositeKey) string {
	return string(ck.Key) + "@" + itoa(uint32(ck.Version))
}

func itoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// resolveVersion consults the in-memory version-record index (the extra
// index this layout cannot avoid, §2.2) for version v's composite keys.
func (s *Single) resolveVersion(v types.VersionID) ([]types.CompositeKey, error) {
	members, err := s.c.Members(v)
	if err != nil {
		return nil, err
	}
	out := make([]types.CompositeKey, len(members))
	for i, id := range members {
		out[i] = s.c.Record(id).CK
	}
	return out, nil
}

// fetch multigets records by composite key.
func (s *Single) fetch(cks []types.CompositeKey, stats *Stats) ([]types.Record, error) {
	keys := make([]string, len(cks))
	for i, ck := range cks {
		keys[i] = ckKey(ck)
	}
	res, err := s.KV.MultiGet(context.Background(), TableSingle, keys)
	if err != nil {
		return nil, err
	}
	stats.Span += len(cks)
	stats.Requests += res.Requests
	stats.BytesRead += res.BytesRead
	stats.SimElapsed += res.Elapsed
	out := make([]types.Record, 0, len(cks))
	for i, val := range res.Values {
		if val == nil {
			continue
		}
		out = append(out, types.Record{CK: cks[i], Value: val})
	}
	return out, nil
}

// GetVersion implements Engine: m_v point requests.
func (s *Single) GetVersion(v types.VersionID) ([]types.Record, Stats, error) {
	var stats Stats
	if int(v) >= s.c.NumVersions() {
		return nil, stats, &types.VersionUnknownError{Version: v}
	}
	cks, err := s.resolveVersion(v)
	if err != nil {
		return nil, stats, err
	}
	recs, err := s.fetch(cks, &stats)
	if err != nil {
		return nil, stats, err
	}
	types.SortRecords(recs)
	stats.Records = len(recs)
	return recs, stats, nil
}

// GetRecord implements Engine: index resolution, then exactly one request.
func (s *Single) GetRecord(key types.Key, v types.VersionID) (types.Record, Stats, error) {
	var stats Stats
	if int(v) >= s.c.NumVersions() {
		return types.Record{}, stats, &types.VersionUnknownError{Version: v}
	}
	for _, id := range s.c.KeyRecords(key) {
		r := s.c.Record(id)
		if visibleAt(s.c, r.CK.Version, s.dels[id], v) {
			recs, err := s.fetch([]types.CompositeKey{r.CK}, &stats)
			if err != nil {
				return types.Record{}, stats, err
			}
			if len(recs) == 1 {
				stats.Records = 1
				return recs[0], stats, nil
			}
			break
		}
	}
	return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
}

// GetRange implements Engine.
func (s *Single) GetRange(lo, hi types.Key, v types.VersionID) ([]types.Record, Stats, error) {
	var stats Stats
	if int(v) >= s.c.NumVersions() {
		return nil, stats, &types.VersionUnknownError{Version: v}
	}
	cks, err := s.resolveVersion(v)
	if err != nil {
		return nil, stats, err
	}
	var want []types.CompositeKey
	for _, ck := range cks {
		if ck.Key >= lo && ck.Key < hi {
			want = append(want, ck)
		}
	}
	recs, err := s.fetch(want, &stats)
	if err != nil {
		return nil, stats, err
	}
	types.SortRecords(recs)
	stats.Records = len(recs)
	return recs, stats, nil
}

// GetHistory implements Engine: one request per record of the key.
func (s *Single) GetHistory(key types.Key) ([]types.Record, Stats, error) {
	var stats Stats
	ids := s.c.KeyRecords(key)
	if len(ids) == 0 {
		return nil, stats, &types.KeyNotFoundError{Key: key, Version: types.InvalidVersion}
	}
	cks := make([]types.CompositeKey, len(ids))
	for i, id := range ids {
		cks[i] = s.c.Record(id).CK
	}
	recs, err := s.fetch(cks, &stats)
	if err != nil {
		return nil, stats, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].CK.Version < recs[j].CK.Version })
	stats.Records = len(recs)
	return recs, stats, nil
}

// StorageBytes implements Engine.
func (s *Single) StorageBytes() int64 { return s.bytes }

// TotalVersionSpan implements Engine: Σ_v m_v.
func (s *Single) TotalVersionSpan() int {
	total := 0
	for v := 0; v < s.c.NumVersions(); v++ {
		members, err := s.c.Members(types.VersionID(v))
		if err != nil {
			continue
		}
		total += len(members)
	}
	return total
}
