package baseline

import (
	"context"

	"rstore/internal/core"
	"rstore/internal/corpus"
	"rstore/internal/types"
)

// Chunked adapts the RStore engine to the Engine interface so the
// experiment harness can compare it head-to-head with the baselines.
type Chunked struct {
	Store *core.Store
	// Label overrides the name (e.g. to tag the partitioner in use).
	Label string
}

// Name implements Engine.
func (e *Chunked) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return "RSTORE"
}

// Build implements Engine via bulk load + offline materialization.
func (e *Chunked) Build(c *corpus.Corpus) error { return e.Store.BulkLoad(context.Background(), c) }

// GetVersion implements Engine.
func (e *Chunked) GetVersion(v types.VersionID) ([]types.Record, Stats, error) {
	return e.Store.GetVersionAll(context.Background(), v)
}

// GetRecord implements Engine.
func (e *Chunked) GetRecord(key types.Key, v types.VersionID) (types.Record, Stats, error) {
	return e.Store.GetRecord(context.Background(), key, v)
}

// GetRange implements Engine.
func (e *Chunked) GetRange(lo, hi types.Key, v types.VersionID) ([]types.Record, Stats, error) {
	return e.Store.GetRangeAll(context.Background(), core.KeyRange(lo, hi), v)
}

// GetHistory implements Engine.
func (e *Chunked) GetHistory(key types.Key) ([]types.Record, Stats, error) {
	return e.Store.GetHistoryAll(context.Background(), key)
}

// StorageBytes implements Engine.
func (e *Chunked) StorageBytes() int64 { return e.Store.ChunkStorageBytes(context.Background()) }

// TotalVersionSpan implements Engine.
func (e *Chunked) TotalVersionSpan() int { return e.Store.TotalVersionSpan() }
