package baseline

import (
	"testing"

	"rstore/internal/corpus"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// visibilityCorpus: V0 → {V1 → V3, V2}; record r originates at V0, is
// deleted at V1 (so invisible in V1's subtree) but stays visible in V2.
func visibilityCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v0)
	v3, _ := g.AddVersion(v1)
	_ = v2
	_ = v3

	c := corpus.New(g)
	must := func(v types.VersionID, d *types.Delta) {
		t.Helper()
		if err := c.AddVersionDelta(v, d); err != nil {
			t.Fatal(err)
		}
	}
	must(0, &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "r", Version: 0}, Value: []byte("r0")},
		{CK: types.CompositeKey{Key: "s", Version: 0}, Value: []byte("s0")},
	}})
	must(1, &types.Delta{Dels: []types.CompositeKey{{Key: "r", Version: 0}}})
	must(2, &types.Delta{})
	must(3, &types.Delta{})
	return c
}

func TestVisibleAt(t *testing.T) {
	c := visibilityCorpus(t)
	dels := collectDeletePoints(c)
	rID, _ := c.IDForCK(types.CompositeKey{Key: "r", Version: 0})

	cases := []struct {
		v    types.VersionID
		want bool
	}{
		{0, true},  // at origin
		{1, false}, // deleted here
		{2, true},  // sibling branch unaffected
		{3, false}, // below the deletion
	}
	for _, tc := range cases {
		if got := visibleAt(c, 0, dels[rID], tc.v); got != tc.want {
			t.Errorf("visibleAt(r@0, V%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
	// A record is never visible above its origin.
	sID, _ := c.IDForCK(types.CompositeKey{Key: "s", Version: 0})
	_ = sID
	if visibleAt(c, 2, nil, 0) {
		t.Error("record visible above its origin")
	}
}

func TestIsAncestor(t *testing.T) {
	c := visibilityCorpus(t)
	g := c.Graph()
	cases := []struct {
		a, v types.VersionID
		want bool
	}{
		{0, 3, true},
		{1, 3, true},
		{3, 3, true},
		{2, 3, false},
		{3, 1, false},
		{1, 2, false},
	}
	for _, tc := range cases {
		if got := isAncestor(g, tc.a, tc.v); got != tc.want {
			t.Errorf("isAncestor(%d, %d) = %v, want %v", tc.a, tc.v, got, tc.want)
		}
	}
}

// TestCollectDeletePoints: multiple deletions across branches accumulate.
func TestCollectDeletePoints(t *testing.T) {
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v0)
	c := corpus.New(g)
	c.AddVersionDelta(v0, &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "x", Version: 0}, Value: []byte("x")},
	}})
	c.AddVersionDelta(v1, &types.Delta{Dels: []types.CompositeKey{{Key: "x", Version: 0}}})
	c.AddVersionDelta(v2, &types.Delta{Dels: []types.CompositeKey{{Key: "x", Version: 0}}})
	dels := collectDeletePoints(c)
	if len(dels[0]) != 2 {
		t.Fatalf("delete points = %v, want both branches", dels[0])
	}
}
