package baseline_test

import (
	"context"
	"errors"
	"testing"

	"rstore/internal/baseline"
	"rstore/internal/core"
	"rstore/internal/corpus"
	"rstore/internal/kvstore"
	"rstore/internal/types"
	"rstore/internal/workload"
)

func testCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	c, err := workload.Generate(workload.Spec{
		Name: "bl", Versions: 30, AvgDepth: 8, RecordsPerVersion: 50,
		UpdatePct: 0.2, Update: workload.RandomUpdate, RecordSize: 96, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func engines(t testing.TB) []baseline.Engine {
	t.Helper()
	newKV := func() *kvstore.Store {
		kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 2, Cost: kvstore.DefaultCostModel()})
		if err != nil {
			t.Fatal(err)
		}
		return kv
	}
	st, err := core.Open(context.Background(), core.Config{KV: newKV(), ChunkCapacity: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return []baseline.Engine{
		&baseline.Delta{KV: newKV(), Capacity: 2048},
		&baseline.Subchunk{KV: newKV()},
		&baseline.Single{KV: newKV()},
		&baseline.Chunked{Store: st},
	}
}

// TestBaselinesAgreeWithGroundTruth verifies all four layouts return
// identical, corpus-accurate answers for all query kinds.
func TestBaselinesAgreeWithGroundTruth(t *testing.T) {
	c := testCorpus(t)
	for _, e := range engines(t) {
		if err := e.Build(c); err != nil {
			t.Fatalf("%s: build: %v", e.Name(), err)
		}
		// Q1 over all versions.
		for v := 0; v < c.NumVersions(); v++ {
			vv := types.VersionID(v)
			want, err := c.Members(vv)
			if err != nil {
				t.Fatal(err)
			}
			recs, stats, err := e.GetVersion(vv)
			if err != nil {
				t.Fatalf("%s: GetVersion(%d): %v", e.Name(), v, err)
			}
			if len(recs) != len(want) {
				t.Fatalf("%s: GetVersion(%d): %d records, want %d", e.Name(), v, len(recs), len(want))
			}
			if stats.Span == 0 {
				t.Fatalf("%s: GetVersion(%d): zero span", e.Name(), v)
			}
			byCK := make(map[types.CompositeKey]string, len(recs))
			for _, r := range recs {
				byCK[r.CK] = string(r.Value)
			}
			for _, id := range want {
				r := c.Record(id)
				if byCK[r.CK] != string(r.Value) {
					t.Fatalf("%s: GetVersion(%d): %v mismatch", e.Name(), v, r.CK)
				}
			}
		}

		// Point queries + range + history on sampled versions/keys.
		v := types.VersionID(c.NumVersions() - 1)
		members, _ := c.Members(v)
		live := make(map[types.Key]types.Record, len(members))
		for _, id := range members {
			r := c.Record(id)
			live[r.CK.Key] = r
		}
		probes := 0
		for k, want := range live {
			got, _, err := e.GetRecord(k, v)
			if err != nil {
				t.Fatalf("%s: GetRecord(%s, %d): %v", e.Name(), k, v, err)
			}
			if got.CK != want.CK {
				t.Fatalf("%s: GetRecord(%s, %d): got %v want %v", e.Name(), k, v, got.CK, want.CK)
			}
			probes++
			if probes >= 10 {
				break
			}
		}
		if _, _, err := e.GetRecord("zzz-missing", v); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("%s: GetRecord(missing): %v", e.Name(), err)
		}

		lo, hi := workload.KeyFor(5), workload.KeyFor(25)
		recs, _, err := e.GetRange(lo, hi, v)
		if err != nil {
			t.Fatalf("%s: GetRange: %v", e.Name(), err)
		}
		wantRange := 0
		for k := range live {
			if k >= lo && k < hi {
				wantRange++
			}
		}
		if len(recs) != wantRange {
			t.Fatalf("%s: GetRange: %d records, want %d", e.Name(), len(recs), wantRange)
		}

		key := workload.KeyFor(3)
		history, _, err := e.GetHistory(key)
		if err != nil {
			t.Fatalf("%s: GetHistory(%s): %v", e.Name(), key, err)
		}
		if len(history) != len(c.KeyRecords(key)) {
			t.Fatalf("%s: GetHistory(%s): %d records, want %d",
				e.Name(), key, len(history), len(c.KeyRecords(key)))
		}

		if e.StorageBytes() <= 0 {
			t.Fatalf("%s: no storage accounted", e.Name())
		}
		if e.TotalVersionSpan() <= 0 {
			t.Fatalf("%s: no span accounted", e.Name())
		}
	}
}

// TestSpanOrdering sanity-checks the paper's qualitative ordering on a
// branched dataset: RStore's span beats DELTA's, and SUBCHUNK's version span
// is the worst of all.
func TestSpanOrdering(t *testing.T) {
	c := testCorpus(t)
	es := engines(t)
	spans := make(map[string]int)
	for _, e := range es {
		if err := e.Build(c); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		spans[e.Name()] = e.TotalVersionSpan()
	}
	if spans["RSTORE"] >= spans["DELTA"] {
		t.Errorf("RSTORE span %d not better than DELTA %d", spans["RSTORE"], spans["DELTA"])
	}
	if spans["SUBCHUNK"] <= spans["RSTORE"] {
		t.Errorf("SUBCHUNK span %d should exceed RSTORE %d", spans["SUBCHUNK"], spans["RSTORE"])
	}
}
