package baseline

import (
	"context"

	"fmt"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/corpus"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// Subchunk is the group-by-primary-key layout (§2.2): all records sharing a
// key are stored compressed under that key. Storage cost and record-
// evolution queries are optimal; full or partial version retrieval must
// fetch every key group ("all chunks must be retrieved for any version
// query", §5.2).
type Subchunk struct {
	KV *kvstore.Store

	c     *corpus.Corpus
	keys  []types.Key // sorted
	dels  [][]types.VersionID
	bytes int64
}

// TableSubchunk is the layout's KVS table.
const TableSubchunk = "bl_subchunk"

// Name implements Engine.
func (s *Subchunk) Name() string { return "SUBCHUNK" }

// Build implements Engine: one compressed group per key, members chained as
// binary deltas in origin order, each annotated with its deletion points so
// visibility resolves client-side.
func (s *Subchunk) Build(c *corpus.Corpus) error {
	s.c = c
	s.dels = collectDeletePoints(c)
	s.keys = append([]types.Key(nil), c.Keys()...)
	sort.Slice(s.keys, func(i, j int) bool { return s.keys[i] < s.keys[j] })
	for _, k := range s.keys {
		ids := c.KeyRecords(k)
		buf, err := s.encodeGroup(ids)
		if err != nil {
			return err
		}
		if err := s.KV.Put(context.Background(), TableSubchunk, string(k), buf); err != nil {
			return err
		}
		s.bytes += int64(len(buf))
	}
	return nil
}

// encodeGroup packs one key's records: the chunk item encoding (first record
// raw, later ones delta-chained) plus per-record deletion annotations.
func (s *Subchunk) encodeGroup(ids []uint32) ([]byte, error) {
	parents := make([]int32, len(ids))
	for i := range parents {
		if i == 0 {
			parents[i] = -1
		} else {
			parents[i] = int32(i - 1) // chain in origin order
		}
	}
	buf, err := chunk.EncodeItem(s.c, ids, parents)
	if err != nil {
		return nil, err
	}
	// Deletion annotations, aligned with members.
	for _, id := range ids {
		buf = codec.PutUvarint(buf, uint64(len(s.dels[id])))
		for _, d := range s.dels[id] {
			buf = codec.PutUvarint(buf, uint64(d))
		}
	}
	return buf, nil
}

// decodeGroup reverses encodeGroup.
func decodeGroup(buf []byte) ([]types.Record, [][]types.VersionID, error) {
	item, rest, err := chunk.DecodeItem(buf)
	if err != nil {
		return nil, nil, err
	}
	dels := make([][]types.VersionID, len(item.Records))
	for i := range dels {
		var n uint64
		n, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		for j := uint64(0); j < n; j++ {
			var d uint64
			d, rest, err = codec.Uvarint(rest)
			if err != nil {
				return nil, nil, err
			}
			dels[i] = append(dels[i], types.VersionID(d))
		}
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: trailing group bytes", types.ErrCorrupt)
	}
	return item.Records, dels, nil
}

// fetchGroups multigets key groups and resolves the record visible at v for
// each (nil if none).
func (s *Subchunk) fetchGroups(keys []types.Key, v types.VersionID, stats *Stats) ([]*types.Record, error) {
	kv := make([]string, len(keys))
	for i, k := range keys {
		kv[i] = string(k)
	}
	res, err := s.KV.MultiGet(context.Background(), TableSubchunk, kv)
	if err != nil {
		return nil, err
	}
	stats.Span += len(keys)
	stats.Requests += res.Requests
	stats.BytesRead += res.BytesRead
	stats.SimElapsed += res.Elapsed
	out := make([]*types.Record, len(keys))
	for i, val := range res.Values {
		if val == nil {
			continue
		}
		recs, dels, err := decodeGroup(val)
		if err != nil {
			return nil, err
		}
		stats.SimElapsed += s.KV.ChargeScan(len(val))
		found := false
		for j := range recs {
			if visibleAt(s.c, recs[j].CK.Version, dels[j], v) {
				r := recs[j]
				out[i] = &r
				found = true
				break
			}
		}
		if !found {
			stats.WastedChunks++
		}
	}
	return out, nil
}

// GetVersion implements Engine: every key group is fetched.
func (s *Subchunk) GetVersion(v types.VersionID) ([]types.Record, Stats, error) {
	var stats Stats
	if int(v) >= s.c.NumVersions() {
		return nil, stats, &types.VersionUnknownError{Version: v}
	}
	resolved, err := s.fetchGroups(s.keys, v, &stats)
	if err != nil {
		return nil, stats, err
	}
	var out []types.Record
	for _, r := range resolved {
		if r != nil {
			out = append(out, *r)
		}
	}
	types.SortRecords(out)
	stats.Records = len(out)
	return out, stats, nil
}

// GetRecord implements Engine: a single group fetch (the layout's strength).
func (s *Subchunk) GetRecord(key types.Key, v types.VersionID) (types.Record, Stats, error) {
	var stats Stats
	if int(v) >= s.c.NumVersions() {
		return types.Record{}, stats, &types.VersionUnknownError{Version: v}
	}
	resolved, err := s.fetchGroups([]types.Key{key}, v, &stats)
	if err != nil {
		return types.Record{}, stats, err
	}
	if resolved[0] == nil {
		return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
	}
	stats.Records = 1
	return *resolved[0], stats, nil
}

// GetRange implements Engine: fetch the groups of keys in range.
func (s *Subchunk) GetRange(lo, hi types.Key, v types.VersionID) ([]types.Record, Stats, error) {
	var stats Stats
	if int(v) >= s.c.NumVersions() {
		return nil, stats, &types.VersionUnknownError{Version: v}
	}
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= lo })
	j := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= hi })
	resolved, err := s.fetchGroups(s.keys[i:j], v, &stats)
	if err != nil {
		return nil, stats, err
	}
	var out []types.Record
	for _, r := range resolved {
		if r != nil {
			out = append(out, *r)
		}
	}
	types.SortRecords(out)
	stats.Records = len(out)
	return out, stats, nil
}

// GetHistory implements Engine: one fetch returns everything.
func (s *Subchunk) GetHistory(key types.Key) ([]types.Record, Stats, error) {
	var stats Stats
	val, err := s.KV.Get(context.Background(), TableSubchunk, string(key))
	if err != nil {
		return nil, stats, &types.KeyNotFoundError{Key: key, Version: types.InvalidVersion}
	}
	stats.Span = 1
	stats.Requests = 1
	stats.BytesRead = int64(len(val))
	stats.SimElapsed += s.KV.Cost().PerRequest
	recs, _, err := decodeGroup(val)
	if err != nil {
		return nil, stats, err
	}
	stats.SimElapsed += s.KV.ChargeScan(len(val))
	types.SortRecords(recs)
	stats.Records = len(recs)
	return recs, stats, nil
}

// StorageBytes implements Engine.
func (s *Subchunk) StorageBytes() int64 { return s.bytes }

// TotalVersionSpan implements Engine: every version touches every group.
func (s *Subchunk) TotalVersionSpan() int {
	return s.c.NumVersions() * len(s.keys)
}
