package baseline

import (
	"context"

	"fmt"

	"rstore/internal/codec"
	"rstore/internal/corpus"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// Delta is the delta-chain layout (§2.2): each version stores only its
// difference from the parent, split into capacity-sized pieces. Version
// reconstruction walks the whole root→v chain; key-centric queries are
// "abysmal" (the paper's word) because deltas of every ancestor must be
// inspected.
type Delta struct {
	KV *kvstore.Store
	// Capacity is the piece size in bytes (comparable to RStore's chunk
	// size so spans compare fairly).
	Capacity int

	c      *corpus.Corpus
	pieces []int // per version: number of stored pieces
	bytes  int64
}

// TableDelta is the layout's KVS table.
const TableDelta = "bl_delta"

// Name implements Engine.
func (d *Delta) Name() string { return "DELTA" }

// Build implements Engine: serializes every version's delta and splits it
// into pieces at record boundaries.
func (d *Delta) Build(c *corpus.Corpus) error {
	if d.Capacity <= 0 {
		d.Capacity = 1 << 20
	}
	d.c = c
	n := c.NumVersions()
	d.pieces = make([]int, n)
	for v := 0; v < n; v++ {
		vv := types.VersionID(v)
		delta := &types.Delta{}
		for _, id := range c.Adds(vv) {
			delta.Adds = append(delta.Adds, c.Record(id))
		}
		for _, id := range c.Dels(vv) {
			delta.Dels = append(delta.Dels, c.Record(id).CK)
		}
		np, err := d.putPieces(vv, delta)
		if err != nil {
			return err
		}
		d.pieces[v] = np
	}
	return nil
}

// putPieces splits one delta into capacity-bounded sub-deltas at record
// granularity.
func (d *Delta) putPieces(v types.VersionID, delta *types.Delta) (int, error) {
	np := 0
	cur := &types.Delta{}
	curBytes := 0
	flush := func() error {
		if len(cur.Adds) == 0 && len(cur.Dels) == 0 {
			return nil
		}
		buf := codec.PutDelta(nil, cur)
		if err := d.KV.Put(context.Background(), TableDelta, pieceKey(v, np), buf); err != nil {
			return err
		}
		d.bytes += int64(len(buf))
		np++
		cur = &types.Delta{}
		curBytes = 0
		return nil
	}
	for _, r := range delta.Adds {
		if curBytes > 0 && curBytes+r.Size() > d.Capacity {
			if err := flush(); err != nil {
				return 0, err
			}
		}
		cur.Adds = append(cur.Adds, r)
		curBytes += r.Size()
	}
	for _, ck := range delta.Dels {
		if curBytes > 0 && curBytes+types.RecordOverhead > d.Capacity {
			if err := flush(); err != nil {
				return 0, err
			}
		}
		cur.Dels = append(cur.Dels, ck)
		curBytes += types.RecordOverhead
	}
	if err := flush(); err != nil {
		return 0, err
	}
	if np == 0 {
		// Empty deltas (possible for no-op versions) still need one piece
		// so reconstruction can verify presence.
		buf := codec.PutDelta(nil, &types.Delta{})
		if err := d.KV.Put(context.Background(), TableDelta, pieceKey(v, 0), buf); err != nil {
			return 0, err
		}
		d.bytes += int64(len(buf))
		np = 1
	}
	return np, nil
}

func pieceKey(v types.VersionID, i int) string {
	return fmt.Sprintf("v%08x_p%04d", uint32(v), i)
}

// fetchPath multigets every piece of every version on the root→v path and
// returns the deltas in application order.
func (d *Delta) fetchPath(path []types.VersionID, stats *Stats) ([]*types.Delta, error) {
	var keys []string
	for _, u := range path {
		for i := 0; i < d.pieces[u]; i++ {
			keys = append(keys, pieceKey(u, i))
		}
	}
	res, err := d.KV.MultiGet(context.Background(), TableDelta, keys)
	if err != nil {
		return nil, err
	}
	if len(res.Missing) > 0 {
		return nil, fmt.Errorf("%w: delta piece %s", types.ErrCorrupt, keys[res.Missing[0]])
	}
	stats.Span += len(keys)
	stats.Requests += res.Requests
	stats.BytesRead += res.BytesRead
	stats.SimElapsed += res.Elapsed
	out := make([]*types.Delta, len(res.Values))
	for i, val := range res.Values {
		dd, err := codec.DecodeDelta(val)
		if err != nil {
			return nil, err
		}
		stats.SimElapsed += d.KV.ChargeScan(len(val))
		out[i] = dd
	}
	return out, nil
}

// GetVersion implements Engine: reconstruct by applying the chain.
func (d *Delta) GetVersion(v types.VersionID) ([]types.Record, Stats, error) {
	var stats Stats
	if int(v) >= d.c.NumVersions() {
		return nil, stats, &types.VersionUnknownError{Version: v}
	}
	deltas, err := d.fetchPath(d.c.Graph().PathFromRoot(v), &stats)
	if err != nil {
		return nil, stats, err
	}
	recs := make(map[types.CompositeKey]types.Record)
	for _, dd := range deltas {
		for _, ck := range dd.Dels {
			delete(recs, ck)
		}
		for _, r := range dd.Adds {
			recs[r.CK] = r
		}
	}
	out := make([]types.Record, 0, len(recs))
	for _, r := range recs {
		out = append(out, r)
	}
	types.SortRecords(out)
	stats.Records = len(out)
	return out, stats, nil
}

// GetRecord implements Engine: walk v→root, stopping at the first delta
// that adds or deletes the key (expected half the chain, Table 1).
func (d *Delta) GetRecord(key types.Key, v types.VersionID) (types.Record, Stats, error) {
	var stats Stats
	if int(v) >= d.c.NumVersions() {
		return types.Record{}, stats, &types.VersionUnknownError{Version: v}
	}
	g := d.c.Graph()
	cur := v
	for {
		deltas, err := d.fetchPath([]types.VersionID{cur}, &stats)
		if err != nil {
			return types.Record{}, stats, err
		}
		for _, dd := range deltas {
			for _, r := range dd.Adds {
				if r.CK.Key == key {
					stats.Records = 1
					return r, stats, nil
				}
			}
			for _, ck := range dd.Dels {
				if ck.Key == key {
					return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
				}
			}
		}
		if cur == 0 {
			return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
		}
		cur = g.Parent(cur)
	}
}

// GetRange implements Engine: worst case per the paper — reconstruct the
// full version, then filter.
func (d *Delta) GetRange(lo, hi types.Key, v types.VersionID) ([]types.Record, Stats, error) {
	recs, stats, err := d.GetVersion(v)
	if err != nil {
		return nil, stats, err
	}
	out := recs[:0]
	for _, r := range recs {
		if r.CK.Key >= lo && r.CK.Key < hi {
			out = append(out, r)
		}
	}
	stats.Records = len(out)
	return out, stats, nil
}

// GetHistory implements Engine: every version's deltas must be scanned —
// the paper deems this impractical, and the cost reflects that.
func (d *Delta) GetHistory(key types.Key) ([]types.Record, Stats, error) {
	var stats Stats
	all := make([]types.VersionID, d.c.NumVersions())
	for v := range all {
		all[v] = types.VersionID(v)
	}
	deltas, err := d.fetchPath(all, &stats)
	if err != nil {
		return nil, stats, err
	}
	var out []types.Record
	for _, dd := range deltas {
		for _, r := range dd.Adds {
			if r.CK.Key == key {
				out = append(out, r)
			}
		}
	}
	if len(out) == 0 {
		return nil, stats, &types.KeyNotFoundError{Key: key, Version: types.InvalidVersion}
	}
	types.SortRecords(out)
	stats.Records = len(out)
	return out, stats, nil
}

// StorageBytes implements Engine.
func (d *Delta) StorageBytes() int64 { return d.bytes }

// TotalVersionSpan implements Engine: Σ_v Σ_{u on path(v)} pieces(u).
func (d *Delta) TotalVersionSpan() int {
	g := d.c.Graph()
	// pathPieces[v] = pieces on root→v path, computed top-down.
	total := 0
	pathPieces := make([]int, d.c.NumVersions())
	for _, v := range g.PreOrder() {
		p := d.pieces[v]
		if v != 0 {
			p += pathPieces[g.Parent(v)]
		}
		pathPieces[v] = p
		total += p
	}
	return total
}
