// Package baseline implements the three baseline storage layouts the paper
// compares RStore against (§2.2): the delta-chain layout of version control
// systems (DELTA), the group-by-primary-key layout (SUBCHUNK), and the
// one-record-per-KVS-key layout (Single Address Space). Each serves the same
// four retrieval queries over the same backing kvstore so that Table 1 and
// Figs 8/11 comparisons run on equal footing.
package baseline

import (
	"rstore/internal/core"
	"rstore/internal/corpus"
	"rstore/internal/types"
)

// Stats mirrors the engine's per-query cost report.
type Stats = core.QueryStats

// Engine is a storage layout under evaluation.
type Engine interface {
	// Name is the paper's label for the layout.
	Name() string
	// Build persists the corpus into the layout's KVS tables.
	Build(c *corpus.Corpus) error
	// GetVersion retrieves all records of a version (Q1).
	GetVersion(v types.VersionID) ([]types.Record, Stats, error)
	// GetRecord retrieves the record of a key visible in a version.
	GetRecord(key types.Key, v types.VersionID) (types.Record, Stats, error)
	// GetRange retrieves a version's records with keys in [lo, hi) (Q2).
	GetRange(lo, hi types.Key, v types.VersionID) ([]types.Record, Stats, error)
	// GetHistory retrieves all records of a key (Q3).
	GetHistory(key types.Key) ([]types.Record, Stats, error)
	// StorageBytes reports the persisted volume.
	StorageBytes() int64
	// TotalVersionSpan reports Σ_v (entries fetched to reconstruct v) —
	// the Fig 8 metric.
	TotalVersionSpan() int
}

// visibleAt reports whether record id (with its origin and deletion points)
// is visible at version v: the origin must be an ancestor of v (inclusive)
// with no deletion on the origin→v path.
func visibleAt(c *corpus.Corpus, origin types.VersionID, dels []types.VersionID, v types.VersionID) bool {
	g := c.Graph()
	if !isAncestor(g, origin, v) {
		return false
	}
	for _, d := range dels {
		// A deletion kills visibility at d and below; it lies on the
		// origin→v path iff it is an ancestor of v (it is a descendant of
		// origin by construction).
		if isAncestor(g, d, v) {
			return false
		}
	}
	return true
}

// isAncestor reports whether a is an ancestor of v in the version tree
// (inclusive), via a depth-guided parent walk.
func isAncestor(g interface {
	Depth(types.VersionID) int
	Parent(types.VersionID) types.VersionID
}, a, v types.VersionID) bool {
	da, dv := g.Depth(a), g.Depth(v)
	if da > dv {
		return false
	}
	for dv > da {
		v = g.Parent(v)
		dv--
	}
	return v == a
}

// recordMeta annotates a stored record with its origin and deletion points,
// letting layouts resolve visibility without RStore's chunk maps.
type recordMeta struct {
	id     uint32
	dels   []types.VersionID
	origin types.VersionID
}

// collectDeletePoints scans the corpus once, recording for every record the
// versions that delete it (multiple are possible across branches).
func collectDeletePoints(c *corpus.Corpus) [][]types.VersionID {
	dels := make([][]types.VersionID, c.NumRecords())
	for v := 0; v < c.NumVersions(); v++ {
		for _, id := range c.Dels(types.VersionID(v)) {
			dels[id] = append(dels[id], types.VersionID(v))
		}
	}
	return dels
}
