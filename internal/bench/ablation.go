package bench

import (
	"context"

	"fmt"

	"rstore/internal/baseline"
	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/subchunk"
	"rstore/internal/workload"
)

// The ablation experiments isolate design decisions DESIGN.md calls out:
// the Bottom-Up partial-chunk merge, the shingle vector length, the chunk
// slack allowance, and read replication — the last being the paper's
// explicitly named future-work item ("explore the effect of replication as
// it reduces the cost of version reconstruction").

// RunAblationMerge compares Bottom-Up with and without end-of-run partial
// merging: merging trades a few extra spans for markedly fewer chunks
// (storage fragmentation).
func RunAblationMerge(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:        "ablation-merge",
		Title:     "Bottom-Up partial-chunk merging (§3.2 'merged at the end to reduce fragmentation')",
		PaperNote: "design choice: fragmentation (chunk count) vs span",
		Headers:   []string{"dataset", "merge", "#chunks", "total span"},
	}
	for _, dsName := range []string{"B1", "C0"} {
		spec, err := workload.SpecByName(dsName)
		if err != nil {
			return nil, err
		}
		spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
		spec.Seed = opts.Seed
		c, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		in, err := partition.NewInputFromCorpus(c, chunkCapacityFor(spec))
		if err != nil {
			return nil, err
		}
		for _, noMerge := range []bool{false, true} {
			a, err := partition.BottomUp{NoPartialMerge: noMerge}.Partition(in)
			if err != nil {
				return nil, err
			}
			label := "on"
			if noMerge {
				label = "off"
			}
			t.AddRow(dsName, label, d(a.NumChunks()), d(partition.TotalSpan(in, a)))
		}
	}
	return []*Table{t}, nil
}

// RunAblationShingles sweeps the min-hash vector length l (Algorithm 1):
// longer vectors sharpen similarity ordering at linear extra cost.
func RunAblationShingles(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	spec, err := workload.SpecByName("C0")
	if err != nil {
		return nil, err
	}
	spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
	spec.Seed = opts.Seed
	c, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	in, err := partition.NewInputFromCorpus(c, chunkCapacityFor(spec))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:        "ablation-shingles",
		Title:     "shingle vector length l (dataset C0)",
		PaperNote: "l is 'a small constant' in the §3.1 complexity analysis",
		Headers:   []string{"l", "total span"},
	}
	for _, l := range []int{1, 2, 4, 8, 16} {
		a, err := partition.Shingle{L: l, Seed: opts.Seed}.Partition(in)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(l), d(partition.TotalSpan(in, a)))
	}
	return []*Table{t}, nil
}

// RunAblationSlack sweeps the chunk overfill allowance of §2.5 ("variations
// of upto 25% allowed"). The knob binds when item sizes are comparable to
// the chunk capacity — i.e. with variable-sized sub-chunks of large records
// — so the sweep runs on a k=6 compressed instance.
func RunAblationSlack(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	spec, err := workload.SpecByName("B1")
	if err != nil {
		return nil, err
	}
	spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
	if spec.RecordSize < 1024 {
		spec.RecordSize = 1024
	}
	spec.Pd = 0.10
	spec.Seed = opts.Seed
	c, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	// Capacity of ~4 raw records: sub-chunks of up to 6 compressed records
	// straddle chunk boundaries, so the slack rule decides placements.
	capacity := 4 * (spec.RecordSize + 16)
	res, err := subchunk.Build(c, 6, capacity)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:        "ablation-slack",
		Title:     "chunk slack allowance (dataset B1, k=6 sub-chunks, Bottom-Up)",
		PaperNote: "§2.5 fixes 25%; chunks 'rarely more than 5-10% overfull' in practice",
		Headers:   []string{"slack", "#chunks", "overfull", "total span"},
	}
	for _, slack := range []float64{0.05, 0.10, 0.25, 0.50} {
		in := *res.In
		in.Slack = slack
		a, err := partition.BottomUp{}.Partition(&in)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", slack*100), d(a.NumChunks()), d(a.Overfull),
			d(partition.TotalSpan(&in, a)))
	}
	return []*Table{t}, nil
}

// RunAblationCache measures the application-server chunk cache on a skewed
// query workload (a handful of hot versions queried repeatedly — the
// collaborative-analytics access pattern of §1): hits skip the §2.3
// per-request KVS cost entirely.
func RunAblationCache(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	spec := workload.Spec{
		Name: "cache", Versions: scaled(300, opts.VersionFrac*5, 24),
		AvgDepth:          40 * opts.VersionFrac * 5,
		RecordsPerVersion: scaled(10000, opts.RecordFrac, 64),
		UpdatePct:         0.10, Update: workload.RandomUpdate,
		RecordSize: scaled(1024, opts.SizeFrac, 64), Seed: opts.Seed,
	}
	t := &Table{
		ID:        "ablation-cache",
		Title:     "application-server chunk cache, hot-version Q1 workload",
		PaperNote: "extension: caching at the AS removes repeated backend round trips (§2.3 cost)",
		Headers:   []string{"cache", "Q1 avg", "backend requests", "hit rate"},
	}
	for _, cacheBytes := range []int64{0, 64 << 20} {
		c, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		st, err := core.Open(context.Background(), core.Config{
			KV:            mustKV(opts, 4),
			ChunkCapacity: chunkCapacityFor(spec),
			CacheBytes:    cacheBytes,
		})
		if err != nil {
			return nil, err
		}
		eng := &baseline.Chunked{Store: st}
		if err := eng.Build(c); err != nil {
			return nil, err
		}
		// Hot set: 4 versions queried round-robin.
		w := workload.NewWorkload(c, opts.Seed+11)
		hot := w.FullVersionQueries(4)
		var totalReq int
		var totalElapsed float64
		n := 0
		for round := 0; round < 8; round++ {
			for _, q := range hot {
				_, qs, err := st.GetVersionAll(context.Background(), q.Version)
				if err != nil {
					return nil, err
				}
				totalReq += qs.Requests
				totalElapsed += float64(qs.SimElapsed.Microseconds()) / 1000
				n++
			}
		}
		cs := st.CacheStats()
		hitRate := "-"
		if cs.Hits+cs.Misses > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(cs.Hits)/float64(cs.Hits+cs.Misses))
		}
		label := "off"
		if cacheBytes > 0 {
			label = "64MB"
		}
		t.AddRow(label, fmt.Sprintf("%.3fms", totalElapsed/float64(n)), d(totalReq), hitRate)
	}
	return []*Table{t}, nil
}

// RunAblationReplication measures the paper's future-work item: replication
// with read balancing spreads a version retrieval's chunk fetches over more
// replicas, cutting the per-node serial queue that bounds the batch.
func RunAblationReplication(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	spec := workload.Spec{
		Name: "repl", Versions: scaled(400, opts.VersionFrac*5, 24),
		AvgDepth:          60 * opts.VersionFrac * 5,
		RecordsPerVersion: scaled(20000, opts.RecordFrac, 64),
		UpdatePct:         0.10, Update: workload.RandomUpdate,
		RecordSize: scaled(1024, opts.SizeFrac, 64), Seed: opts.Seed,
	}
	c, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:        "ablation-replication",
		Title:     "replication + read balancing (8 nodes), Q1 latency",
		PaperNote: "paper conclusion: replication 'reduces the cost of version reconstruction but increases the cost of storing'",
		Headers:   []string{"rf", "read balance", "Q1 avg", "stored bytes"},
	}
	for _, cfg := range []struct {
		rf      int
		balance bool
	}{{1, false}, {2, false}, {2, true}, {3, true}} {
		kv, err := opts.OpenCluster(kvstore.Config{
			Nodes: 8, ReplicationFactor: cfg.rf, ReadBalance: cfg.balance,
			Cost: kvstore.DefaultCostModel(),
		})
		if err != nil {
			return nil, err
		}
		st, err := core.Open(context.Background(), core.Config{KV: kv, ChunkCapacity: chunkCapacityFor(spec)})
		if err != nil {
			return nil, err
		}
		eng := &baseline.Chunked{Store: st}
		// Regenerate: BulkLoad takes ownership of the corpus.
		cc, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		_ = c
		if err := eng.Build(cc); err != nil {
			return nil, err
		}
		w := workload.NewWorkload(cc, opts.Seed+9)
		q1 := w.FullVersionQueries(opts.Queries)
		balance := "off"
		if cfg.balance {
			balance = "on"
		}
		t.AddRow(d(cfg.rf), balance, fmtDur(runQueries(eng, q1)), mb(kv.Stats(context.Background()).BytesStored))
	}
	return []*Table{t}, nil
}
