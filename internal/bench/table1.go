package bench

import (
	"context"
	"fmt"

	"rstore/internal/baseline"
	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/types"
	"rstore/internal/workload"
)

// RunTable1 regenerates Table 1: the storage / random-version-retrieval /
// point-query costs of the four layouts on the table's model workload — a
// chain of n versions with m_v records each and update fraction d. The paper
// gives closed-form expressions; we report both the closed form and the
// measured values from the actual layout implementations.
func RunTable1(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	n := scaled(100, opts.VersionFrac*5, 16) // chain length
	mv := scaled(2000, opts.RecordFrac, 64)  // records per version
	dFrac := 0.05                            // update fraction
	s := scaled(1024, opts.SizeFrac, 64)     // record size

	c, err := workload.Generate(workload.Spec{
		Name: "T1", Versions: n, AvgDepth: 0, RecordsPerVersion: mv,
		UpdatePct: dFrac, Update: workload.RandomUpdate, RecordSize: s,
		DeleteFrac: 0.001, InsertFrac: 0.001, // Table 1's model is pure modification
		Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "table1",
		Title: fmt.Sprintf("layout cost comparison (chain n=%d, m_v=%d, d=%.2f, s=%dB)", n, mv, dFrac, s),
		PaperNote: "chunking: storage≈uniques, version=(m_v·s, m_v·s/s_c), point=(s_c, 1); " +
			"DELTA: version/point walk half the chain; SUBCHUNK: version reads all groups, point=1; " +
			"SINGLE: m_v queries per version, no compression",
		Headers: []string{"layout", "storage", "version: data", "version: #queries", "point: data", "point: #queries"},
	}

	newKV := func() (*kvstore.Store, error) {
		return opts.OpenCluster(kvstore.Config{Nodes: 4, Cost: kvstore.DefaultCostModel()})
	}
	chunkCap := 64 * (s + types.RecordOverhead) // s_c = 64 records

	engines := make([]baseline.Engine, 0, 4)
	kv, err := newKV()
	if err != nil {
		return nil, err
	}
	st, err := core.Open(context.Background(), core.Config{KV: kv, ChunkCapacity: chunkCap})
	if err != nil {
		return nil, err
	}
	engines = append(engines, &baseline.Chunked{Store: st, Label: "Chunked (RStore)"})
	for _, mk := range []func(*kvstore.Store) baseline.Engine{
		func(kv *kvstore.Store) baseline.Engine { return &baseline.Delta{KV: kv, Capacity: chunkCap} },
		func(kv *kvstore.Store) baseline.Engine { return &baseline.Subchunk{KV: kv} },
		func(kv *kvstore.Store) baseline.Engine { return &baseline.Single{KV: kv} },
	} {
		kv, err := newKV()
		if err != nil {
			return nil, err
		}
		engines = append(engines, mk(kv))
	}

	w := workload.NewWorkload(c, opts.Seed+1)
	vq := w.FullVersionQueries(opts.Queries)
	pq := w.PointQueries(opts.Queries)

	for _, e := range engines {
		if err := e.Build(c); err != nil {
			return nil, fmt.Errorf("table1: %s: %w", e.Name(), err)
		}
		var vBytes, pBytes int64
		var vReqs, pReqs int
		for _, q := range vq {
			_, st, err := e.GetVersion(q.Version)
			if err != nil {
				return nil, fmt.Errorf("table1: %s: %w", e.Name(), err)
			}
			vBytes += st.BytesRead
			vReqs += st.Requests
		}
		for _, q := range pq {
			_, st, err := e.GetRecord(q.Key, q.Version)
			if err != nil {
				return nil, fmt.Errorf("table1: %s: point %s@%d: %w", e.Name(), q.Key, q.Version, err)
			}
			pBytes += st.BytesRead
			pReqs += st.Requests
		}
		nq := float64(len(vq))
		np := float64(len(pq))
		t.AddRow(e.Name(),
			mb(e.StorageBytes()),
			mb(int64(float64(vBytes)/nq)),
			f1(float64(vReqs)/nq),
			fmt.Sprintf("%.1fKB", float64(pBytes)/np/1024),
			f1(float64(pReqs)/np),
		)
	}
	return []*Table{t}, nil
}

// scaled applies a fraction with a floor.
func scaled(v int, frac float64, min int) int {
	out := int(float64(v) * frac)
	if out < min {
		out = min
	}
	return out
}
