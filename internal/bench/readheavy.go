package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote/engined"
	"rstore/internal/kvstore"
)

// RunReadHeavy measures the workload the paper's premise implies for the
// storage tier — many overlapping versions served under heavy, skewed read
// traffic — as a head-to-head of the two durable engines: disklog (single
// level, every Get is an index probe plus a random segment read) against
// lsm (bloom-filtered sorted runs behind a block cache). Both engines run
// the identical zipfian workload on private directories with matched
// write-buffer sizes: bulk load, one overwrite pass to create dead
// versions, an explicit compaction to steady state, then a timed point-get
// phase whose sampled read latencies yield p50/p95/p99. The substrate override
// is deliberately ignored — the comparison IS the experiment.
func RunReadHeavy(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	nKeys := scaled(250000, opts.RecordFrac, 500)
	valSize := scaled(2048, opts.SizeFrac, 64)
	reads := 20 * nKeys
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "rstore-bench-readheavy-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		ID:        "readheavy",
		Title:     fmt.Sprintf("read-heavy zipfian point gets: %d keys x %dB, %d overwrites, %d reads", nKeys, valSize, nKeys, reads),
		PaperNote: "extension beyond the paper: durable-engine read path under the multi-version serving workload",
		Headers:   []string{"engine", "load", "reads/s", "p50", "p95", "p99", "disk", "live"},
		Metrics:   map[string]float64{},
	}

	// Matched 256 KiB write buffers: disklog rotates segments and lsm
	// flushes its memtable at the same volume, so both engines face a
	// multi-file on-disk layout before their compaction runs.
	engines := []struct {
		name string
		open func(string) (engine.Backend, error)
	}{
		{"disklog", func(d string) (engine.Backend, error) {
			return disklog.Open(d, disklog.Options{SegmentBytes: 256 << 10})
		}},
		{"lsm", func(d string) (engine.Backend, error) {
			return lsm.Open(d, lsm.Options{MemtableBytes: 256 << 10})
		}},
	}
	rps := map[string]float64{}
	for _, eng := range engines {
		be, err := eng.open(filepath.Join(dir, eng.name))
		if err != nil {
			return nil, fmt.Errorf("bench readheavy: open %s: %w", eng.name, err)
		}
		res, err := runReadHeavyOn(ctx, be, nKeys, valSize, reads, opts.Seed)
		if cerr := be.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("bench readheavy: %s: %w", eng.name, err)
		}
		rps[eng.name] = float64(reads) / res.read.Seconds()
		p50, p95, p99 := pctl(res.lat, 0.50), pctl(res.lat, 0.95), pctl(res.lat, 0.99)
		t.AddRow(eng.name, secs(res.load.Seconds()), fmt.Sprintf("%.0f", rps[eng.name]),
			us(p50), us(p95), us(p99), mb(res.disk), mb(res.live))
		t.Metrics[eng.name+"_reads_per_sec"] = rps[eng.name]
		t.Metrics[eng.name+"_p50_us"] = usF(p50)
		t.Metrics[eng.name+"_p95_us"] = usF(p95)
		t.Metrics[eng.name+"_p99_us"] = usF(p99)
		t.Metrics[eng.name+"_load_sec"] = res.load.Seconds()
		t.Metrics[eng.name+"_disk_bytes"] = float64(res.disk)
	}
	speedup := rps["lsm"] / rps["disklog"]
	t.Metrics["lsm_read_speedup_vs_disklog"] = speedup
	t.AddRow("lsm/disklog", "-", fmt.Sprintf("%.2fx", speedup), "-", "-", "-", "-", "-")

	remoteTbl, err := runReadHeavyRemote(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("bench readheavy: remote phase: %w", err)
	}
	return []*Table{t, remoteTbl}, nil
}

// runReadHeavyRemote measures the wire-level MultiGet batching win: an
// rf=3 cluster of three in-process storage daemons behind real TCP
// sockets, read zipfian in fixed-size batches through the batched path
// (one OpMultiGet round trip per node per batch) and through the per-key
// path (kvstore.Config.DisableReadBatching — one replicated point get per
// key, the pre-batching behavior). Same daemons, same data, same access
// sequence; only the read path differs.
func runReadHeavyRemote(ctx context.Context, opts Options) (*Table, error) {
	nKeys := scaled(20000, opts.RecordFrac, 400)
	valSize := scaled(1024, opts.SizeFrac, 64)
	const batchSize = 64
	nBatches := 4 * nKeys / batchSize
	if nBatches < 50 {
		nBatches = 50
	}

	servers := make([]*engined.Server, 0, 3)
	backends := make([]engine.Backend, 0, 3)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, b := range backends {
			b.Close()
		}
	}()
	addrs := make([]string, 3)
	for i := range addrs {
		be := memory.New()
		srv, err := engined.Start("127.0.0.1:0", be)
		if err != nil {
			return nil, err
		}
		backends = append(backends, be)
		servers = append(servers, srv)
		addrs[i] = srv.Addr().String()
	}
	open := func(perKey bool) (*kvstore.Store, error) {
		return kvstore.Open(ctx, kvstore.Config{
			Engine: kvstore.EngineRemote, NodeAddrs: addrs, ReplicationFactor: 3,
			DisableReadBatching: perKey,
		})
	}

	// Load once through the batched store; rf=3 on 3 nodes puts every key
	// everywhere, so both read paths face identical replicas.
	batched, err := open(false)
	if err != nil {
		return nil, err
	}
	defer batched.Close()
	key := func(i int) string { return fmt.Sprintf("doc-%06d", i) }
	mkval := func(i int) []byte {
		b := make([]byte, valSize)
		copy(b, fmt.Sprintf("doc-%06d:", i))
		return b
	}
	ents := make([]kvstore.Entry, 0, 128)
	for i := 0; i < nKeys; i++ {
		ents = append(ents, kvstore.Entry{Key: key(i), Value: mkval(i)})
		if len(ents) == cap(ents) || i == nKeys-1 {
			if err := batched.BatchPut(ctx, "t", ents); err != nil {
				return nil, err
			}
			ents = ents[:0]
		}
	}

	// Precomputed zipfian batches, shared by both paths.
	rnd := rand.New(rand.NewSource(opts.Seed))
	zipf := rand.NewZipf(rnd, 1.1, 1, uint64(nKeys-1))
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = key(i)
	}
	access := make([][]string, nBatches)
	for b := range access {
		access[b] = make([]string, batchSize)
		for j := range access[b] {
			access[b][j] = keys[zipf.Uint64()]
		}
	}

	run := func(s *kvstore.Store) (time.Duration, []time.Duration, error) {
		for i := 0; i < 3; i++ { // warm-up: conns dialed, caches touched
			if _, err := s.MultiGet(ctx, "t", access[i%len(access)]); err != nil {
				return 0, nil, err
			}
		}
		lat := make([]time.Duration, 0, nBatches)
		start := time.Now()
		for _, b := range access {
			t0 := time.Now()
			res, err := s.MultiGet(ctx, "t", b)
			lat = append(lat, time.Since(t0))
			if err != nil {
				return 0, nil, err
			}
			if len(res.Missing) != 0 {
				return 0, nil, fmt.Errorf("multiget missing %d keys", len(res.Missing))
			}
		}
		elapsed := time.Since(start)
		sortDurations(lat)
		return elapsed, lat, nil
	}

	t := &Table{
		ID:        "readheavy-remote",
		Title:     fmt.Sprintf("batched vs per-key MultiGet over TCP: rf=3 on 3 daemons, %d keys x %dB, %d batches x %d keys", nKeys, valSize, nBatches, batchSize),
		PaperNote: "extension beyond the paper: one wire round trip per node per batch vs one replicated point get per key",
		Headers:   []string{"read path", "keys/s", "batch p50", "batch p95", "batch p99"},
		Metrics:   map[string]float64{},
	}
	kps := map[string]float64{}
	paths := []struct {
		name   string
		perKey bool
	}{{"batched", false}, {"per-key", true}}
	for _, p := range paths {
		s := batched
		if p.perKey {
			if s, err = open(true); err != nil {
				return nil, err
			}
			defer s.Close()
		}
		elapsed, lat, err := run(s)
		if err != nil {
			return nil, fmt.Errorf("%s path: %w", p.name, err)
		}
		kps[p.name] = float64(nBatches*batchSize) / elapsed.Seconds()
		p50, p95, p99 := pctl(lat, 0.50), pctl(lat, 0.95), pctl(lat, 0.99)
		t.AddRow(p.name, fmt.Sprintf("%.0f", kps[p.name]), us(p50), us(p95), us(p99))
		prefix := "multiget_" + p.name
		t.Metrics[prefix+"_keys_per_sec"] = kps[p.name]
		t.Metrics[prefix+"_batch_p50_us"] = usF(p50)
		t.Metrics[prefix+"_batch_p95_us"] = usF(p95)
		t.Metrics[prefix+"_batch_p99_us"] = usF(p99)
	}
	speedup := kps["batched"] / kps["per-key"]
	t.Metrics["multiget_batched_speedup_vs_perkey"] = speedup
	t.AddRow("batched/per-key", fmt.Sprintf("%.2fx", speedup), "-", "-", "-")
	return t, nil
}

// rhResult is one engine's run of the readheavy workload.
type rhResult struct {
	load time.Duration
	read time.Duration
	lat  []time.Duration // sampled read latencies, sorted ascending
	disk int64
	live int64
}

// runReadHeavyOn drives the workload against one backend. The RNG is
// reseeded per backend so both engines see byte-identical key and access
// sequences.
func runReadHeavyOn(ctx context.Context, be engine.Backend, nKeys, valSize, reads int, seed int64) (rhResult, error) {
	var res rhResult
	key := func(i int) string { return fmt.Sprintf("doc-%06d", i) }
	mkval := func(i, rev int) []byte {
		b := make([]byte, valSize)
		copy(b, fmt.Sprintf("doc-%06d rev-%d:", i, rev))
		return b
	}
	rnd := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rnd, 1.1, 1, uint64(nKeys-1))

	const batch = 128
	start := time.Now()
	ents := make([]engine.Entry, 0, batch)
	flush := func() error {
		if len(ents) == 0 {
			return nil
		}
		err := be.BatchPut(ctx, "t", ents)
		ents = ents[:0]
		return err
	}
	// Bulk load: every key once, through the fsynced batch path.
	for i := 0; i < nKeys; i++ {
		ents = append(ents, engine.Entry{Key: key(i), Value: mkval(i, 0)})
		if len(ents) == batch {
			if err := flush(); err != nil {
				return res, err
			}
		}
	}
	if err := flush(); err != nil {
		return res, err
	}
	// Overwrite pass: zipfian, so hot documents accumulate dead versions —
	// the multi-version update pattern the paper's workload implies.
	for w := 0; w < nKeys; w++ {
		i := int(zipf.Uint64())
		ents = append(ents, engine.Entry{Key: key(i), Value: mkval(i, 1)})
		if len(ents) == batch {
			if err := flush(); err != nil {
				return res, err
			}
		}
	}
	if err := flush(); err != nil {
		return res, err
	}
	res.load = time.Since(start)

	// Compact to steady state: both engines reclaim their dead versions
	// before the timed read phase, so the comparison is read path against
	// read path, not compaction debt.
	if c, ok := be.(engine.Compactor); ok {
		if _, err := c.Compact(ctx); err != nil {
			return res, err
		}
	}

	// Precompute every key string and the zipfian access sequence so the
	// timed loop measures the engine's Get path, not rng and fmt overhead.
	// Latencies are sampled (every 8th read) instead of timed per read for
	// the same reason; 1/8 of a 20x-keys read phase is still a deep sample.
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = key(i)
	}
	access := make([]int32, reads)
	for q := range access {
		access[q] = int32(zipf.Uint64())
	}
	// Warm-up: touch every key once, untimed, so the timed phase measures
	// steady-state serving (populated row/block/page caches) for both
	// engines rather than first-touch fill costs.
	for _, k := range keys {
		if _, ok, err := be.Get(ctx, "t", k); err != nil || !ok {
			return res, fmt.Errorf("warmup %s: ok=%v err=%w", k, ok, err)
		}
	}
	docPrefix := []byte("doc-")
	const latEvery = 8
	res.lat = make([]time.Duration, 0, reads/latEvery+1)
	rstart := time.Now()
	for q := 0; q < reads; q++ {
		k := keys[access[q]]
		sampled := q%latEvery == 0
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		v, ok, err := be.Get(ctx, "t", k)
		if sampled {
			res.lat = append(res.lat, time.Since(t0))
		}
		if err != nil {
			return res, err
		}
		if !ok || len(v) != valSize || !bytes.HasPrefix(v, docPrefix) {
			return res, fmt.Errorf("read %s: ok=%v len=%d", k, ok, len(v))
		}
	}
	res.read = time.Since(rstart)
	sort.Slice(res.lat, func(a, b int) bool { return res.lat[a] < res.lat[b] })

	if c, ok := be.(engine.Compactor); ok {
		st, err := c.CompactionStats(ctx)
		if err != nil {
			return res, err
		}
		res.disk, res.live = st.DiskBytes, st.LiveBytes
	}
	return res, nil
}

// pctl reads the p-quantile from an ascending latency sample.
func pctl(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

func us(d time.Duration) string { return fmt.Sprintf("%.1fµs", usF(d)) }

func usF(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
