package bench

import (
	"context"

	"fmt"

	"rstore/internal/core"
	"rstore/internal/corpus"
	"rstore/internal/types"
	"rstore/internal/vgraph"
	"rstore/internal/workload"
)

// RunFig13 regenerates Fig 13: online partitioning quality. A dataset's
// versions are replayed through the engine's online path (CommitDelta +
// batched flushes, §4) at several batch sizes; at each checkpoint the total
// version span is divided by the span an offline BOTTOM-UP run achieves on
// the same prefix. Ratios near 1 mean the batched online algorithm loses
// little quality; smaller batches pay more.
func RunFig13(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	var tables []*Table
	for _, dsName := range []string{"B1", "C1"} {
		spec, err := workload.SpecByName(dsName)
		if err != nil {
			return nil, err
		}
		spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
		spec.Seed = opts.Seed
		c, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		n := c.NumVersions()
		capacity := chunkCapacityFor(spec)
		checkpoints := []int{n / 4, n / 2, 3 * n / 4, n}
		batches := []int{n / 8, n / 4, n / 2}

		// Offline reference spans per checkpoint.
		offline := make(map[int]int, len(checkpoints))
		for _, cp := range checkpoints {
			prefix, err := prefixCorpus(c, cp)
			if err != nil {
				return nil, err
			}
			st, err := opts.OpenStore(core.Config{ChunkCapacity: capacity})
			if err != nil {
				return nil, err
			}
			if err := st.BulkLoad(context.Background(), prefix); err != nil {
				return nil, err
			}
			offline[cp] = st.TotalVersionSpan()
		}

		t := &Table{
			ID:    "fig13-" + dsName,
			Title: fmt.Sprintf("online partitioning quality ratio (dataset %s, n=%d)", dsName, n),
			PaperNote: "B1: ratios 1.00–1.63, improving with batch size; C1: 1.00–1.08 " +
				"(deep trees tolerate batching); quality degrades at later checkpoints for small batches",
			Headers: append([]string{"batch size"}, func() []string {
				h := make([]string, len(checkpoints))
				for i, cp := range checkpoints {
					h[i] = fmt.Sprintf("@%d", cp)
				}
				return h
			}()...),
		}

		for _, batch := range batches {
			if batch < 1 {
				batch = 1
			}
			st, err := opts.OpenStore(core.Config{ChunkCapacity: capacity, BatchSize: batch})
			if err != nil {
				return nil, err
			}
			row := []string{d(batch)}
			next := 0
			for v := 0; v < n; v++ {
				vv := types.VersionID(v)
				delta := deltaOf(c, vv)
				parents := []types.VersionID{types.InvalidVersion}
				if v != 0 {
					parents = append([]types.VersionID(nil), c.Graph().Parents(vv)...)
				}
				if _, err := st.CommitDelta(context.Background(), parents, delta); err != nil {
					return nil, fmt.Errorf("fig13: %s batch=%d v=%d: %w", dsName, batch, v, err)
				}
				if next < len(checkpoints) && v+1 == checkpoints[next] {
					if err := st.Flush(context.Background()); err != nil {
						return nil, err
					}
					ratio := float64(st.TotalVersionSpan()) / float64(offline[checkpoints[next]])
					row = append(row, f2(ratio))
					next++
				}
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// deltaOf rebuilds a version's delta (with payloads) from the corpus.
func deltaOf(c *corpus.Corpus, v types.VersionID) *types.Delta {
	d := &types.Delta{}
	for _, id := range c.Adds(v) {
		d.Adds = append(d.Adds, c.Record(id))
	}
	for _, id := range c.Dels(v) {
		d.Dels = append(d.Dels, c.Record(id).CK)
	}
	return d
}

// prefixCorpus rebuilds a corpus containing only the first n versions (the
// generated graphs are prefix-closed: parents precede children).
func prefixCorpus(c *corpus.Corpus, n int) (*corpus.Corpus, error) {
	g := vgraph.New()
	out := corpus.New(g)
	for v := 0; v < n; v++ {
		vv := types.VersionID(v)
		var err error
		if v == 0 {
			_, err = g.AddRoot()
		} else {
			_, err = g.AddVersion(c.Graph().Parents(vv)...)
		}
		if err != nil {
			return nil, err
		}
		if err := out.AddVersionDelta(vv, deltaOf(c, vv)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
