package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
)

// RunMixed is the YCSB-style companion to readheavy: the same two durable
// engines (disklog and lsm on matched write buffers) under a zipfian
// workload that interleaves point gets with overwrites at a configurable
// read ratio (Options.ReadRatio, default 95% reads — YCSB B). Reads and
// writes are timed in one stream, the way a serving tier actually sees
// them, with separately sampled read and write latencies yielding
// p50/p95/p99 per class. Like readheavy, the substrate override is
// ignored: the head-to-head is the experiment.
func RunMixed(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	nKeys := scaled(250000, opts.RecordFrac, 500)
	valSize := scaled(2048, opts.SizeFrac, 64)
	ops := 10 * nKeys
	ratio := opts.ReadRatio
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "rstore-bench-mixed-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		ID:        "mixed",
		Title:     fmt.Sprintf("zipfian mixed workload: %d keys x %dB, %d ops at %.0f%% reads", nKeys, valSize, ops, ratio*100),
		PaperNote: "extension beyond the paper: durable-engine serving path under a YCSB-style read/write mix",
		Headers:   []string{"engine", "load", "ops/s", "r-p50", "r-p95", "r-p99", "w-p50", "w-p95", "w-p99", "disk"},
		Metrics:   map[string]float64{"read_ratio": ratio},
	}

	// Matched 256 KiB write buffers, as in readheavy.
	engines := []struct {
		name string
		open func(string) (engine.Backend, error)
	}{
		{"disklog", func(d string) (engine.Backend, error) {
			return disklog.Open(d, disklog.Options{SegmentBytes: 256 << 10})
		}},
		{"lsm", func(d string) (engine.Backend, error) {
			return lsm.Open(d, lsm.Options{MemtableBytes: 256 << 10})
		}},
	}
	opsPerSec := map[string]float64{}
	for _, eng := range engines {
		be, err := eng.open(filepath.Join(dir, eng.name))
		if err != nil {
			return nil, fmt.Errorf("bench mixed: open %s: %w", eng.name, err)
		}
		res, err := runMixedOn(ctx, be, nKeys, valSize, ops, ratio, opts.Seed)
		if cerr := be.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("bench mixed: %s: %w", eng.name, err)
		}
		opsPerSec[eng.name] = float64(ops) / res.run.Seconds()
		rp50, rp95, rp99 := pctl(res.readLat, 0.50), pctl(res.readLat, 0.95), pctl(res.readLat, 0.99)
		wp50, wp95, wp99 := pctl(res.writeLat, 0.50), pctl(res.writeLat, 0.95), pctl(res.writeLat, 0.99)
		t.AddRow(eng.name, secs(res.load.Seconds()), fmt.Sprintf("%.0f", opsPerSec[eng.name]),
			us(rp50), us(rp95), us(rp99), us(wp50), us(wp95), us(wp99), mb(res.disk))
		t.Metrics[eng.name+"_ops_per_sec"] = opsPerSec[eng.name]
		t.Metrics[eng.name+"_read_p50_us"] = usF(rp50)
		t.Metrics[eng.name+"_read_p95_us"] = usF(rp95)
		t.Metrics[eng.name+"_read_p99_us"] = usF(rp99)
		t.Metrics[eng.name+"_write_p50_us"] = usF(wp50)
		t.Metrics[eng.name+"_write_p95_us"] = usF(wp95)
		t.Metrics[eng.name+"_write_p99_us"] = usF(wp99)
		t.Metrics[eng.name+"_load_sec"] = res.load.Seconds()
		t.Metrics[eng.name+"_disk_bytes"] = float64(res.disk)
	}
	speedup := opsPerSec["lsm"] / opsPerSec["disklog"]
	t.Metrics["lsm_mixed_speedup_vs_disklog"] = speedup
	t.AddRow("lsm/disklog", "-", fmt.Sprintf("%.2fx", speedup), "-", "-", "-", "-", "-", "-", "-")
	return []*Table{t}, nil
}

// mixedResult is one engine's run of the mixed workload.
type mixedResult struct {
	load     time.Duration
	run      time.Duration
	readLat  []time.Duration // sampled read latencies, sorted ascending
	writeLat []time.Duration // sampled write latencies, sorted ascending
	disk     int64
}

// runMixedOn drives the workload against one backend. The RNG is reseeded
// per backend so both engines see byte-identical key, access, and
// read/write-decision sequences.
func runMixedOn(ctx context.Context, be engine.Backend, nKeys, valSize, ops int, ratio float64, seed int64) (mixedResult, error) {
	var res mixedResult
	key := func(i int) string { return fmt.Sprintf("doc-%06d", i) }
	mkval := func(i, rev int) []byte {
		b := make([]byte, valSize)
		copy(b, fmt.Sprintf("doc-%06d rev-%d:", i, rev))
		return b
	}
	rnd := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rnd, 1.1, 1, uint64(nKeys-1))

	// Bulk load through the fsynced batch path (as in readheavy).
	const batch = 128
	start := time.Now()
	ents := make([]engine.Entry, 0, batch)
	flush := func() error {
		if len(ents) == 0 {
			return nil
		}
		err := be.BatchPut(ctx, "t", ents)
		ents = ents[:0]
		return err
	}
	for i := 0; i < nKeys; i++ {
		ents = append(ents, engine.Entry{Key: key(i), Value: mkval(i, 0)})
		if len(ents) == batch {
			if err := flush(); err != nil {
				return res, err
			}
		}
	}
	if err := flush(); err != nil {
		return res, err
	}
	res.load = time.Since(start)

	// Precompute the op stream — zipfian targets and the read/write coin —
	// so the timed loop measures the engine, not rng and fmt overhead.
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = key(i)
	}
	access := make([]int32, ops)
	isRead := make([]bool, ops)
	for q := range access {
		access[q] = int32(zipf.Uint64())
		isRead[q] = rnd.Float64() < ratio
	}
	// One shared overwrite buffer per revision: writes pay the engine's
	// copy, not the harness's allocation.
	wval := mkval(0, 1)
	// Warm-up: touch every key once, untimed.
	for _, k := range keys {
		if _, ok, err := be.Get(ctx, "t", k); err != nil || !ok {
			return res, fmt.Errorf("warmup %s: ok=%v err=%w", k, ok, err)
		}
	}

	docPrefix := []byte("doc-")
	const latEvery = 8
	res.readLat = make([]time.Duration, 0, ops/latEvery+1)
	res.writeLat = make([]time.Duration, 0, ops/latEvery+1)
	rstart := time.Now()
	for q := 0; q < ops; q++ {
		k := keys[access[q]]
		sampled := q%latEvery == 0
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		if isRead[q] {
			v, ok, err := be.Get(ctx, "t", k)
			if sampled {
				res.readLat = append(res.readLat, time.Since(t0))
			}
			if err != nil {
				return res, err
			}
			if !ok || len(v) != valSize || !bytes.HasPrefix(v, docPrefix) {
				return res, fmt.Errorf("read %s: ok=%v len=%d", k, ok, len(v))
			}
		} else {
			err := be.Put(ctx, "t", k, wval)
			if sampled {
				res.writeLat = append(res.writeLat, time.Since(t0))
			}
			if err != nil {
				return res, err
			}
		}
	}
	res.run = time.Since(rstart)
	sortDurations(res.readLat)
	sortDurations(res.writeLat)

	if c, ok := be.(engine.Compactor); ok {
		st, err := c.CompactionStats(ctx)
		if err != nil {
			return res, err
		}
		res.disk = st.DiskBytes
	}
	return res, nil
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
}
