package bench

import (
	"fmt"
	"time"

	"rstore/internal/partition"
	"rstore/internal/workload"
)

// RunFig9 regenerates Fig 9: the effect of the subtree bound β on the
// Bottom-Up partitioner, on dataset B0 — total version span for full (Q1)
// and partial (Q2) retrieval rises as β shrinks, while the total
// partitioning time first falls (less processing per node) and then rises
// again (merge overhead dominates).
func RunFig9(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	spec, err := workload.SpecByName("B0")
	if err != nil {
		return nil, err
	}
	spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
	// The β sweep spans 5…301; keep enough versions for the upper range to
	// differ from "unlimited".
	if spec.Versions < 320 {
		spec.Versions = 320
		spec.AvgDepth = 96 // preserve B0's depth/breadth ratio (~0.3 n)
	}
	spec.Seed = opts.Seed
	c, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	capacity := chunkCapacityFor(spec)
	in, err := partition.NewInputFromCorpus(c, capacity)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "fig9",
		Title: fmt.Sprintf("Bottom-Up subtree bound β sweep (dataset B0 scaled: n=%d, m'≈%d)", spec.Versions, spec.RecordsPerVersion),
		PaperNote: "span (Q1/Q2) increases as β decreases; total time dips with smaller β then " +
			"rises again below β≈20 from merge overhead",
		Headers: []string{"β", "Q1 total span", "Q2 total span", "partition time"},
	}

	// β values mirror the paper (5..301), capped to the scaled version count.
	betas := []int{5, 10, 20, 40, 80, 160, spec.Versions}
	seen := make(map[int]bool)
	for _, beta := range betas {
		if beta > spec.Versions {
			beta = spec.Versions
		}
		if seen[beta] {
			continue
		}
		seen[beta] = true
		algo := partition.BottomUp{Beta: beta}
		start := time.Now()
		a, err := algo.Partition(in)
		if err != nil {
			return nil, fmt.Errorf("fig9: β=%d: %w", beta, err)
		}
		elapsed := time.Since(start)
		spans := partition.ChunkSpan(in, a)
		q1 := 0
		for _, s := range spans {
			q1 += s
		}
		q2 := partialSpanEstimate(c.NumKeys(), in, a, 0.10)
		t.AddRow(d(beta), d(q1), d(q2), elapsed.Round(time.Microsecond).String())
	}
	return []*Table{t}, nil
}

// partialSpanEstimate computes the total span of a fixed 10%-of-keyspace
// range query over all versions: for each version, the number of distinct
// chunks holding its in-range records.
func partialSpanEstimate(numKeys int, in *partition.Input, a *partition.Assignment, frac float64) int {
	chunkOf := a.ChunkOf(len(in.Items))
	hi := workload.KeyFor(int(frac * float64(numKeys)))
	spans := make([]map[uint32]struct{}, in.Graph.NumVersions())
	for v := range spans {
		spans[v] = map[uint32]struct{}{}
	}
	partition.ForEachVersionLive(in, func(v, item uint32) {
		if in.Items[item].CK.Key < hi {
			spans[v][chunkOf[item]] = struct{}{}
		}
	})
	total := 0
	for _, s := range spans {
		total += len(s)
	}
	return total
}
