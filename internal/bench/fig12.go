package bench

import (
	"context"
	"fmt"

	"rstore/internal/baseline"
	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/workload"
)

// RunFig12 regenerates Fig 12: weak scalability. Cluster size doubles from
// 1 to 16 nodes while the dataset doubles with it (more versions); the
// reported metrics are Q1 (full version retrieval) latency with the average
// version span, and Q3 (record evolution) latency with the average key span.
// The paper observes good weak scalability: latency grows slowly, driven by
// span growth, not node count.
func RunFig12(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	nodeCounts := []int{1, 2, 4, 8, 12, 16}

	var tables []*Table
	for _, ds := range []struct {
		name              string
		baseVersions      int
		recordsPerVersion int
		depthFrac         float64
	}{
		{"G", 80, 400, 0.25},
		{"H", 32, 800, 0.4},
	} {
		t := &Table{
			ID:    "fig12-" + ds.name,
			Title: fmt.Sprintf("weak scaling, dataset %s (versions double with nodes)", ds.name),
			PaperNote: "G: Q1 7.35→11.39s, span 508→702; Q3 0.35→0.48s, key span 21→34. " +
				"H: Q1 61.8→78.9s, span 400→595; Q3 0.98→3.05s. Latency tracks span, not node count",
			Headers: []string{"#nodes", "#versions", "Q1 avg", "avg version span", "Q3 avg", "avg key span"},
		}
		for _, nodes := range nodeCounts {
			versions := scaled(ds.baseVersions*nodes, opts.VersionFrac*25, 16)
			recs := scaled(ds.recordsPerVersion, opts.RecordFrac*25, 64)
			spec := workload.Spec{
				Name: ds.name, Versions: versions,
				AvgDepth:          float64(versions) * ds.depthFrac,
				RecordsPerVersion: recs, UpdatePct: 0.10,
				Update:     workload.RandomUpdate,
				RecordSize: scaled(1024, opts.SizeFrac, 64), Seed: opts.Seed,
			}
			c, err := workload.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("fig12: %s/%d: %w", ds.name, nodes, err)
			}
			kv, err := opts.OpenCluster(kvstore.Config{
				Nodes: nodes, ReplicationFactor: min(2, nodes), Cost: kvstore.DefaultCostModel(),
			})
			if err != nil {
				return nil, err
			}
			st, err := core.Open(context.Background(), core.Config{KV: kv, ChunkCapacity: chunkCapacityFor(spec)})
			if err != nil {
				return nil, err
			}
			eng := &baseline.Chunked{Store: st}
			if err := eng.Build(c); err != nil {
				return nil, fmt.Errorf("fig12: %s/%d: %w", ds.name, nodes, err)
			}

			w := workload.NewWorkload(c, opts.Seed+int64(nodes))
			q1 := w.FullVersionQueries(opts.Queries)
			q3 := w.RecordEvolutionQueries(opts.Queries)

			var spanSum, keySpanSum int
			for _, q := range q1 {
				spanSum += st.VersionSpan(q.Version)
			}
			for _, q := range q3 {
				keySpanSum += st.KeySpan(q.Key)
			}
			t.AddRow(
				d(nodes), d(versions),
				fmtDur(runQueries(eng, q1)),
				f1(float64(spanSum)/float64(len(q1))),
				fmtDur(runQueries(eng, q3)),
				f1(float64(keySpanSum)/float64(len(q3))),
			)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
