package bench

import (
	"fmt"

	"rstore/internal/baseline"
	"rstore/internal/corpus"
	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/types"
	"rstore/internal/workload"
)

// fig8Algorithms are the partitioners compared in Fig 8, paper order.
func fig8Algorithms(seed int64) []partition.Algorithm {
	return []partition.Algorithm{
		partition.BottomUp{},
		partition.Shingle{Seed: seed},
		partition.DepthFirst{},
		partition.BreadthFirst{},
	}
}

// chunkCapacityFor picks a chunk capacity preserving the paper's regime
// (1MB chunks ≈ 1000 records out of 20K–100K per version): roughly m'/32
// records per chunk so spans stay in the tens-to-hundreds.
func chunkCapacityFor(spec workload.Spec) int {
	perChunk := spec.RecordsPerVersion / 32
	if perChunk < 8 {
		perChunk = 8
	}
	return perChunk * (spec.RecordSize + types.RecordOverhead)
}

// RunFig8 regenerates Fig 8: total version span (number of chunks retrieved
// to reconstruct every version) for BOTTOM-UP, SHINGLE, DEPTHFIRST,
// BREADTHFIRST and the DELTA baseline across the catalog datasets.
func RunFig8(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	panels := [][]string{
		{"A0", "A1", "A2", "B0", "B1", "B2"},
		{"C0", "C1", "C2", "D0", "D1", "D2"},
	}
	var tables []*Table
	for pi, names := range panels {
		t := &Table{
			ID:    fmt.Sprintf("fig8%c", 'a'+pi),
			Title: "total version span without compression (k=1)",
			PaperNote: "BOTTOM-UP uniformly best; beats DELTA up to 8.21× (3.56× avg); SHINGLE degrades " +
				"as trees get shallower, DEPTHFIRST improves; BREADTHFIRST never beats DEPTHFIRST",
			Headers: []string{"dataset", "BOTTOM-UP", "SHINGLE", "DEPTHFIRST", "BREADTHFIRST", "DELTA"},
		}
		for _, name := range names {
			spec, err := workload.SpecByName(name)
			if err != nil {
				return nil, err
			}
			spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
			spec.Seed = opts.Seed
			c, err := workload.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("fig8: %s: %w", name, err)
			}
			capacity := chunkCapacityFor(spec)
			in, err := partition.NewInputFromCorpus(c, capacity)
			if err != nil {
				return nil, err
			}
			row := []string{name}
			for _, algo := range fig8Algorithms(opts.Seed) {
				a, err := algo.Partition(in)
				if err != nil {
					return nil, fmt.Errorf("fig8: %s/%s: %w", name, algo.Name(), err)
				}
				row = append(row, d(partition.TotalSpan(in, a)))
			}
			row = append(row, d(deltaSpan(opts, c, capacity)))
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// deltaSpan computes the DELTA baseline's total version span without
// issuing queries.
func deltaSpan(opts Options, c *corpus.Corpus, capacity int) int {
	kv, err := opts.OpenCluster(kvstore.Config{Nodes: 1})
	if err != nil {
		return -1
	}
	dl := &baseline.Delta{KV: kv, Capacity: capacity}
	if err := dl.Build(c); err != nil {
		return -1
	}
	return dl.TotalVersionSpan()
}
