package bench

import (
	"strconv"
	"strings"
	"testing"
)

// microOpts shrinks every experiment to smoke-test size.
func microOpts() Options {
	return Options{VersionFrac: 0.004, RecordFrac: 0.004, SizeFrac: 0.08, Queries: 3, Seed: 42}
}

// TestEveryExperimentRuns smoke-tests each paper artifact generator: it must
// produce at least one non-empty table with consistent row widths.
func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(microOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tab := range tables {
				if tab.ID == "" || tab.Title == "" {
					t.Errorf("%s: table missing id/title", e.ID)
				}
				if len(tab.Rows) == 0 {
					t.Errorf("%s/%s: empty table", e.ID, tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Headers) {
						t.Errorf("%s/%s: row width %d != header width %d",
							e.ID, tab.ID, len(row), len(tab.Headers))
					}
					for _, cell := range row {
						if cell == "" {
							t.Errorf("%s/%s: empty cell", e.ID, tab.ID)
						}
					}
				}
				var sb strings.Builder
				tab.Fprint(&sb)
				if !strings.Contains(sb.String(), tab.ID) {
					t.Errorf("%s: Fprint lacks table id", e.ID)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig8"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nonexistent"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o = o.withDefaults()
	q := Quick()
	if o.VersionFrac != q.VersionFrac || o.Queries != q.Queries || o.Seed != q.Seed {
		t.Fatalf("defaults: %+v", o)
	}
	// Partial overrides survive.
	o = Options{Queries: 99}.withDefaults()
	if o.Queries != 99 || o.VersionFrac != q.VersionFrac {
		t.Fatalf("partial defaults: %+v", o)
	}
}

// TestChunkSizeMonotone asserts the §2.3 property that drives the entire
// design: simulated retrieval time falls monotonically as chunks grow.
func TestChunkSizeMonotone(t *testing.T) {
	tables, err := RunChunkSize(microOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) < 4 {
		t.Fatalf("only %d rows", len(rows))
	}
	var prev float64 = 1 << 60
	for _, row := range rows {
		secs, err := parseSecs(row[3])
		if err != nil {
			t.Fatalf("bad time cell %q: %v", row[3], err)
		}
		if secs > prev {
			t.Fatalf("retrieval time not monotone: %v", rows)
		}
		prev = secs
	}
	// End-to-end win of at least a factor of five even at micro scale.
	first, _ := parseSecs(rows[0][3])
	last, _ := parseSecs(rows[len(rows)-1][3])
	if first < last*5 {
		t.Fatalf("chunking win only %.1f×", first/last)
	}
}

func parseSecs(cell string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
}
