package bench

import (
	"fmt"
	"math/rand"
	"time"

	"rstore/internal/kvstore"
)

// RunChunkSize regenerates the §2.3 table: the time to reconstruct a version
// as the chunk size grows from 1 record to 10000 records, with records
// assigned to chunks at random. The paper's point — the "too many queries"
// problem — is that fewer, larger requests win by orders of magnitude even
// though larger random chunks transfer much irrelevant data.
//
// The measured quantity is the simulated retrieval time under the calibrated
// Cassandra cost model, using a sequential client exactly like the paper's
// naive setting.
func RunChunkSize(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	// Paper: 1M unique records, 100K per version, 100B records. Scaled.
	unique := scaled(1_000_000, opts.RecordFrac*opts.VersionFrac*400, 20_000)
	perVersion := unique / 10
	const recordSize = 100

	cost := kvstore.DefaultCostModel()
	cost.Parallelism = 1 // the §2.3 experiment issues requests sequentially

	t := &Table{
		ID:        "table-chunksize",
		Title:     fmt.Sprintf("version reconstruction time vs chunk size (%d uniques, %d per version, 100B records)", unique, perVersion),
		PaperNote: "1→10000 records/chunk: 65.42s, 14.18s, 3.10s, 1.07s, 0.56s — monotone, ~100× end to end",
		Headers:   []string{"chunk size (records)", "chunks fetched", "data fetched", "sim time"},
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	// The version's records: a random subset of the uniques.
	needed := make([]int, perVersion)
	perm := rng.Perm(unique)
	copy(needed, perm[:perVersion])

	for _, chunkRecords := range []int{1, 10, 100, 1000, 10000} {
		if chunkRecords > unique {
			break
		}
		numChunks := (unique + chunkRecords - 1) / chunkRecords
		// Random assignment: a fresh permutation split into equal groups of
		// chunkRecords (the paper's "random assignment of records to
		// chunks" — chunks are full, placement is random).
		assign := make([]int, unique)
		for i, r := range rng.Perm(unique) {
			assign[r] = i / chunkRecords
		}
		// Count records per chunk for transfer sizing.
		perChunk := make([]int, numChunks)
		for _, c := range assign {
			perChunk[c]++
		}
		// Distinct chunks needed by the version.
		seen := make(map[int]bool, perVersion)
		for _, r := range needed {
			seen[assign[r]] = true
		}
		// Simulated retrieval: sequential requests, transfer whole chunks,
		// scan everything fetched.
		var elapsed time.Duration
		var bytes int64
		for c := range seen {
			sz := perChunk[c] * recordSize
			elapsed += cost.PerRequest
			elapsed += time.Duration(float64(sz) / cost.Bandwidth * float64(time.Second))
			elapsed += cost.ScanPerByte * time.Duration(sz)
			bytes += int64(sz)
		}
		t.AddRow(d(chunkRecords), d(len(seen)), mb(bytes), secs(elapsed.Seconds()))
	}
	return []*Table{t}, nil
}
