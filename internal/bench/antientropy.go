package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
	"rstore/internal/kvstore"
)

// RunAntiEntropy measures the Merkle-tree anti-entropy extension: what a
// clean background sweep costs (bytes hashed per rotation when nothing
// diverged — the steady-state tax), and how fast the loop finds and
// repairs a 1%-diverged replica whose damage was injected behind the
// store's back (no hints parked, read repair off, zero client reads).
// Head-to-head disklog vs lsm because the engines differ exactly where
// anti-entropy hurts: disklog re-sweeps the table for every digest, while
// the lsm engine's generation-keyed memo answers an unchanged table's
// digest without touching data. Always in-process — divergence injection
// needs the backend handles — so the substrate override is ignored.
func RunAntiEntropy(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	baseKeys := scaled(4000, opts.RecordFrac, 64)
	valSize := scaled(1024, opts.SizeFrac, 64)
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "rstore-bench-antientropy-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		ID:        "antientropy",
		Title:     fmt.Sprintf("merkle anti-entropy: clean-sweep cost and 1%%-divergence convergence (3 nodes, rf=3, %dB values)", valSize),
		PaperNote: "extension beyond the paper: background replica sync under the paper's replicated KVS assumption",
		Headers:   []string{"engine", "keys", "load", "clean sweep MB", "diverged", "converge ms", "keys repaired", "repair MB hashed"},
		Metrics:   map[string]float64{},
	}

	engines := []struct {
		name string
		open func(string) (engine.Backend, error)
	}{
		{"disklog", func(d string) (engine.Backend, error) {
			return disklog.Open(d, disklog.Options{SegmentBytes: 256 << 10})
		}},
		{"lsm", func(d string) (engine.Backend, error) {
			return lsm.Open(d, lsm.Options{MemtableBytes: 256 << 10})
		}},
	}
	for _, eng := range engines {
		for _, nKeys := range []int{baseKeys, 4 * baseKeys} {
			if err := runAntiEntropyOn(ctx, t, dir, eng.name, eng.open, nKeys, valSize); err != nil {
				return nil, fmt.Errorf("bench antientropy: %s/%d: %w", eng.name, nKeys, err)
			}
		}
	}
	return []*Table{t}, nil
}

func runAntiEntropyOn(ctx context.Context, t *Table, dir, name string, open func(string) (engine.Backend, error), nKeys, valSize int) error {
	backends := make([]engine.Backend, 3)
	kv, err := kvstore.Open(ctx, kvstore.Config{
		Nodes: 3, ReplicationFactor: 3,
		Repair: kvstore.RepairOptions{
			AntiEntropyInterval: time.Millisecond,
			DisableReadRepair:   true,
			DisableHints:        true,
		},
		NewBackend: func(id int) (engine.Backend, error) {
			be, err := open(filepath.Join(dir, fmt.Sprintf("%s-%d-%d", name, nKeys, id)))
			backends[id] = be
			return be, err
		},
	})
	if err != nil {
		return err
	}
	defer kv.Close()

	waitUntil := func(what string, cond func() bool) error {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("timed out waiting for %s", what)
	}
	key := func(i int) string { return fmt.Sprintf("doc-%06d", i) }
	val := make([]byte, valSize)
	copy(val, "antientropy:")

	loadStart := time.Now()
	for i := 0; i < nKeys; i++ {
		if err := kv.Put(ctx, "t", key(i), val); err != nil {
			return err
		}
	}
	load := time.Since(loadStart)

	// Clean-sweep cost: let the loop run three full pair rotations over
	// the converged corpus and charge the hashed bytes to the steady state.
	base := kv.Stats(ctx)
	cleanTarget := base.AESyncs + 9 // 3 pairs x 3 rotations
	if err := waitUntil("clean rotations", func() bool { return kv.Stats(ctx).AESyncs >= cleanTarget }); err != nil {
		return err
	}
	clean := kv.Stats(ctx)
	cleanRounds := clean.AESyncs - base.AESyncs
	cleanMBPerRotation := float64(clean.AEBytesHashed-base.AEBytesHashed) / float64(cleanRounds) * 3 / (1 << 20)

	// Diverge 1% of the keys on node 1 behind the store's back, then time
	// the loop finding and repairing every one of them.
	nDiverge := nKeys / 100
	if nDiverge == 0 {
		nDiverge = 1
	}
	for i := 0; i < nDiverge; i++ {
		if err := backends[1].Delete(ctx, "t", key(i)); err != nil {
			return err
		}
	}
	pre := kv.Stats(ctx)
	start := time.Now()
	if err := waitUntil("divergence repaired", func() bool {
		for i := 0; i < nDiverge; i++ {
			if _, ok, err := backends[1].Get(ctx, "t", key(i)); err != nil || !ok {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	converge := time.Since(start)
	post := kv.Stats(ctx)

	repaired := int(post.AEKeysRepaired - pre.AEKeysRepaired)
	repairMB := float64(post.AEBytesHashed-pre.AEBytesHashed) / (1 << 20)
	t.AddRow(name, d(nKeys), secs(load.Seconds()), fmt.Sprintf("%.2f", cleanMBPerRotation),
		d(nDiverge), fmt.Sprintf("%.1f", float64(converge.Microseconds())/1000),
		d(repaired), fmt.Sprintf("%.2f", repairMB))
	prefix := fmt.Sprintf("%s_%d_", name, nKeys)
	t.Metrics[prefix+"converge_ms"] = float64(converge.Microseconds()) / 1000
	t.Metrics[prefix+"clean_sweep_mb"] = cleanMBPerRotation
	t.Metrics[prefix+"repair_mb_hashed"] = repairMB
	t.Metrics[prefix+"keys_repaired"] = float64(repaired)
	return nil
}
