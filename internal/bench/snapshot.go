package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Snapshot is the machine-readable record of one experiment run, written
// as BENCH_<exp>.json so future PRs extend a tracked perf trajectory
// instead of quoting anecdotes. It carries the substrate and workload
// parameters alongside the rendered tables and each table's key numbers
// (Table.Metrics), so a snapshot is comparable without re-deriving context
// from prose.
type Snapshot struct {
	Experiment  string          `json:"experiment"`
	Backend     string          `json:"backend"` // substrate override; "memory" when none
	VersionFrac float64         `json:"version_frac"`
	RecordFrac  float64         `json:"record_frac"`
	SizeFrac    float64         `json:"size_frac"`
	Queries     int             `json:"queries"`
	Seed        int64           `json:"seed"`
	ElapsedSec  float64         `json:"elapsed_sec"`
	Tables      []SnapshotTable `json:"tables"`
}

// SnapshotTable is one rendered artifact plus its machine-readable metrics.
type SnapshotTable struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Headers []string           `json:"headers"`
	Rows    [][]string         `json:"rows"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// NewSnapshot assembles the snapshot for one completed experiment.
func NewSnapshot(expID string, o Options, elapsed time.Duration, tables []*Table) Snapshot {
	o = o.withDefaults()
	backend := o.Engine
	if backend == "" {
		backend = "memory"
	}
	s := Snapshot{
		Experiment:  expID,
		Backend:     backend,
		VersionFrac: o.VersionFrac,
		RecordFrac:  o.RecordFrac,
		SizeFrac:    o.SizeFrac,
		Queries:     o.Queries,
		Seed:        o.Seed,
		ElapsedSec:  elapsed.Seconds(),
	}
	for _, t := range tables {
		s.Tables = append(s.Tables, SnapshotTable{
			ID: t.ID, Title: t.Title, Headers: t.Headers, Rows: t.Rows, Metrics: t.Metrics,
		})
	}
	return s
}

// WriteFile writes the snapshot as indented JSON (trailing newline, so the
// checked-in artifact diffs cleanly).
func (s Snapshot) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: snapshot %s: %w", path, err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
