// Package bench regenerates every table and figure of the paper's
// evaluation (§2.3, §5, Table 1–2, Fig 8–13) as printable tables. Each
// experiment runs on proportionally scaled datasets (DESIGN.md §1) and
// reports the same rows/series as the paper; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package bench

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync/atomic"

	"rstore/internal/core"
	"rstore/internal/engine/remote"
	"rstore/internal/kvstore"
)

// Options controls experiment scale and the storage substrate the
// experiment clusters run on.  Zero scale fields take Quick() values.
type Options struct {
	// VersionFrac and RecordFrac scale dataset versions / records per
	// version relative to the paper's Table 2 parameters.
	VersionFrac float64
	// RecordFrac scales records per version.
	RecordFrac float64
	// SizeFrac scales record payload size.
	SizeFrac float64
	// Queries is the per-experiment query sample size.
	Queries int
	// Seed drives all generators.
	Seed int64
	// ReadRatio is the read fraction of the mixed experiment's op stream
	// (0 < ReadRatio < 1; other experiments ignore it). Defaults to 0.95,
	// the YCSB-B mix.
	ReadRatio float64

	// Engine overrides the storage backend every experiment cluster runs
	// on: kvstore.EngineMemory (the default — allocation-exact, what the
	// calibrated cost model assumes), kvstore.EngineDisklog or
	// kvstore.EngineLSM (each cluster gets a fresh subdirectory of
	// DataDir), or kvstore.EngineRemote (the cluster runs on the
	// rstore-node daemons in NodeAddrs — the address list fixes the node
	// count, overriding each experiment's nominal topology). Every cluster
	// a run opens wipes the daemons first through the wire protocol's
	// reset op, so one running daemon set serves a whole run and each
	// cluster still starts clean.
	Engine string
	// DataDir hosts per-cluster data directories when Engine is
	// kvstore.EngineDisklog or kvstore.EngineLSM.
	DataDir string
	// NodeAddrs lists rstore-node addresses when Engine is
	// kvstore.EngineRemote.
	NodeAddrs []string
}

// clusterSeq hands each disk-backed experiment cluster a fresh directory:
// disklog directories are single-cluster (LOCK, GEOMETRY pinning).
var clusterSeq atomic.Int64

// substrate resolves the engine override into (engine, data directory,
// node addresses) — the single source of truth for both helpers below.
// Empty engine means the experiment's nominal in-memory cluster stands.
func (o Options) substrate() (eng, dir string, addrs []string) {
	switch o.Engine {
	case "", kvstore.EngineMemory:
		return "", "", nil
	case kvstore.EngineRemote:
		return kvstore.EngineRemote, "", o.NodeAddrs
	default:
		// Disklog and any future disk-backed engine: fresh directory per
		// cluster.
		return o.Engine, filepath.Join(o.DataDir, fmt.Sprintf("cluster-%03d", clusterSeq.Add(1))), nil
	}
}

// OpenCluster opens an experiment cluster of the nominal shape cfg on the
// backend Options selects.
func (o Options) OpenCluster(cfg kvstore.Config) (*kvstore.Store, error) {
	eng, dir, addrs := o.substrate()
	if eng != "" {
		cfg.Engine, cfg.Dir, cfg.NodeAddrs = eng, dir, addrs
		if eng == kvstore.EngineRemote {
			cfg.Nodes = 0 // the address list is the cluster shape
			if err := resetDaemons(addrs); err != nil {
				return nil, err
			}
		}
	}
	return kvstore.Open(context.Background(), cfg)
}

// OpenStore opens a store whose private cluster (cfg.KV == nil) runs on
// the backend Options selects. The store owns that cluster, so the usual
// st.Close() cleans it up.
func (o Options) OpenStore(cfg core.Config) (*core.Store, error) {
	if cfg.KV == nil {
		eng, dir, addrs := o.substrate()
		if eng != "" {
			cfg.Engine, cfg.DataDir, cfg.NodeAddrs = eng, dir, addrs
			if eng == kvstore.EngineRemote {
				if err := resetDaemons(addrs); err != nil {
					return nil, err
				}
			}
		}
	}
	return core.Open(context.Background(), cfg)
}

// resetDaemons wipes every remote daemon through the wire reset op so the
// cluster about to open starts clean — data, geometry pins, and parked
// hints from the previous experiment cluster all go. Raw engine clients
// are used on purpose: a kvstore.Store cannot open until the stale pins
// are gone.
func resetDaemons(addrs []string) error {
	ctx := context.Background()
	for _, a := range addrs {
		c, err := remote.Dial(a, remote.Options{})
		if err != nil {
			return fmt.Errorf("bench: reset daemon %s: %w", a, err)
		}
		err = c.Reset(ctx)
		if cerr := c.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("bench: reset daemon %s: %w", a, err)
		}
	}
	return nil
}

// Quick returns the fast-iteration scale used by `go test -bench` defaults:
// a few seconds per experiment.
func Quick() Options {
	return Options{VersionFrac: 0.02, RecordFrac: 0.02, SizeFrac: 0.125, Queries: 10, Seed: 42}
}

// Full returns a heavier scale for standalone runs of cmd/rstore-bench.
func Full() Options {
	return Options{VersionFrac: 0.08, RecordFrac: 0.05, SizeFrac: 0.25, Queries: 25, Seed: 42}
}

func (o Options) withDefaults() Options {
	q := Quick()
	if o.VersionFrac <= 0 {
		o.VersionFrac = q.VersionFrac
	}
	if o.RecordFrac <= 0 {
		o.RecordFrac = q.RecordFrac
	}
	if o.SizeFrac <= 0 {
		o.SizeFrac = q.SizeFrac
	}
	if o.Queries <= 0 {
		o.Queries = q.Queries
	}
	if o.Seed == 0 {
		o.Seed = q.Seed
	}
	if o.ReadRatio <= 0 || o.ReadRatio >= 1 {
		o.ReadRatio = 0.95
	}
	return o
}

// Table is one regenerated paper artifact.
type Table struct {
	// ID is the experiment id (e.g. "fig8a").
	ID string
	// Title describes the artifact.
	Title string
	// PaperNote summarizes what the paper reported, for shape comparison.
	PaperNote string
	Headers   []string
	Rows      [][]string
	// Metrics holds the table's key numbers in machine-readable form for
	// the BENCH_<exp>.json snapshots (see snapshot.go); nil when the
	// rendered rows are the whole story.
	Metrics map[string]float64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperNote != "" {
		fmt.Fprintf(w, "   paper: %s\n", t.PaperNote)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered paper artifact generator.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) ([]*Table, error)
}

// Experiments lists every reproducible artifact in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "analytical cost model: storage/version/point costs per layout (Table 1)", RunTable1},
		{"table-chunksize", "version reconstruction time vs chunk size (§2.3 table)", RunChunkSize},
		{"table2", "dataset catalog statistics (Table 2)", RunTable2},
		{"fig8", "total version span by partitioning algorithm (Fig 8)", RunFig8},
		{"fig9", "effect of subtree bound β on Bottom-Up (Fig 9)", RunFig9},
		{"fig10", "span and compression ratio vs sub-chunk size k (Fig 10)", RunFig10},
		{"fig11", "query latency vs sub-chunk size, all layouts (Fig 11)", RunFig11},
		{"fig12", "weak scalability across cluster sizes (Fig 12)", RunFig12},
		{"fig13", "online partitioning quality vs batch size (Fig 13)", RunFig13},
		{"ablation-merge", "ablation: Bottom-Up partial-chunk merging on/off", RunAblationMerge},
		{"ablation-shingles", "ablation: shingle vector length sweep", RunAblationShingles},
		{"ablation-slack", "ablation: chunk slack allowance sweep", RunAblationSlack},
		{"ablation-replication", "extension: replication + read balancing (paper future work)", RunAblationReplication},
		{"ablation-cache", "extension: application-server chunk cache on hot versions", RunAblationCache},
		{"repair", "extension: replication repair — hinted handoff + read repair convergence\n(always in-process: needs failure injection)", RunRepair},
		{"compact", "extension: disklog segment compaction — disk bytes before/after an\noverwrite-heavy workload (always on a private disklog cluster)", RunCompact},
		{"readheavy", "extension: read-heavy zipfian point gets — disklog vs lsm engines\nhead-to-head with p50/p95/p99, plus batched vs per-key MultiGet on an\nrf=3 remote cluster (always on private engines/daemons)", RunReadHeavy},
		{"mixed", "extension: YCSB-style zipfian read/write mix (-read-ratio) — disklog vs\nlsm with per-class p50/p95/p99 (always on private engine directories)", RunMixed},
		{"antientropy", "extension: merkle-tree anti-entropy — clean-sweep cost and convergence\ntime for a 1%-diverged replica, disklog vs lsm (always in-process:\ndivergence injection needs the backend handles)", RunAntiEntropy},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func d(v int) string        { return fmt.Sprintf("%d", v) }
func secs(v float64) string { return fmt.Sprintf("%.3fs", v) }

// mb renders bytes as MB with two decimals.
func mb(v int64) string { return fmt.Sprintf("%.2fMB", float64(v)/(1<<20)) }
