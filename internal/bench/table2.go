package bench

import (
	"fmt"

	"rstore/internal/corpus"
	"rstore/internal/types"
	"rstore/internal/workload"
)

// RunTable2 regenerates Table 2: the dataset catalog with measured
// statistics of the (scaled) generated datasets — version counts, average
// tree depth, records per version, unique records, and volumes.
func RunTable2(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:    "table2",
		Title: fmt.Sprintf("dataset catalog (scaled ×%.3g versions, ×%.3g records)", opts.VersionFrac, opts.RecordFrac),
		PaperNote: "A0–F: 300–10002 versions, depth 56–300, 20K–100K records/version, " +
			"1.3M–16.7M uniques, 1.7–80GB unique volume",
		Headers: []string{"dataset", "#versions", "avg depth", "~#recs/version", "%update", "type",
			"#unique records", "unique size", "total size"},
	}
	for _, spec := range workload.Catalog() {
		s := spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
		s.Seed = opts.Seed
		c, err := workload.Generate(s)
		if err != nil {
			return nil, fmt.Errorf("table2: %s: %w", s.Name, err)
		}
		st := measure(c)
		t.AddRow(s.Name, d(c.NumVersions()), f1(c.Graph().AvgLeafDepth()),
			d(st.avgRecords), fmt.Sprintf("%.0f", s.UpdatePct*100), s.Update.String(),
			d(c.NumRecords()), mb(c.TotalBytes()), mb(st.totalBytes))
	}
	return []*Table{t}, nil
}

type datasetStats struct {
	avgRecords int
	totalBytes int64
}

// measure computes per-dataset statistics: average version cardinality and
// the total (non-deduplicated) volume across versions.
func measure(c *corpus.Corpus) datasetStats {
	var totalRecs, totalBytes int64
	sizes := make([]int64, c.NumRecords())
	for i := range sizes {
		sizes[i] = int64(c.Record(uint32(i)).Size())
	}
	// One incremental pass: maintain live count and volume.
	var live, liveBytes int64
	var walk func(v types.VersionID)
	g := c.Graph()
	walk = func(v types.VersionID) {
		for _, id := range c.Dels(v) {
			live--
			liveBytes -= sizes[id]
		}
		for _, id := range c.Adds(v) {
			live++
			liveBytes += sizes[id]
		}
		totalRecs += live
		totalBytes += liveBytes
		for _, ch := range g.Children(v) {
			walk(ch)
		}
		for _, id := range c.Adds(v) {
			live--
			liveBytes -= sizes[id]
		}
		for _, id := range c.Dels(v) {
			live++
			liveBytes += sizes[id]
		}
	}
	if c.NumVersions() > 0 {
		walk(0)
	}
	return datasetStats{
		avgRecords: int(totalRecs / int64(c.NumVersions())),
		totalBytes: totalBytes,
	}
}
