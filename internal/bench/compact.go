package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// RunCompact measures disklog segment compaction under the workload the
// paper's multi-version premise implies: the same documents overwritten
// version after version, leaving every superseded value as dead bytes in
// the append-only segments. It reports on-disk volume and live ratio
// before compaction, after Compact, and after a close/reopen (proving the
// compacted layout replays), verifying along the way that every read
// returns the same results pre- and post-compaction and that compaction
// reclaimed at least half the disk volume. It always runs on a private
// disklog cluster — compaction is a disklog feature — so the substrate
// override is deliberately ignored.
func RunCompact(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	nKeys := scaled(2000, opts.RecordFrac, 64)
	valSize := scaled(512, opts.SizeFrac, 64)
	const rounds = 4 // overwrites per key after the initial write
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "rstore-bench-compact-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Small segments so the workload spans many of them: compaction's unit
	// of work is the sealed segment.
	newBackend := func(int) (engine.Backend, error) {
		return disklog.Open(dir, disklog.Options{SegmentBytes: 128 << 10})
	}
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 1, NewBackend: newBackend})
	if err != nil {
		return nil, err
	}
	closed := false
	defer func() {
		if !closed {
			kv.Close()
		}
	}()

	t := &Table{
		ID:        "compact",
		Title:     fmt.Sprintf("disklog compaction: %d keys x %d versions, 10%% deleted", nKeys, rounds+1),
		PaperNote: "extension beyond the paper: log-structured storage reclaim under the versioned-overwrite workload",
		Headers:   []string{"phase", "disk", "live", "live ratio", "reclaimed"},
	}

	key := func(i int) string { return fmt.Sprintf("doc-%06d", i) }
	val := func(i, rev int) []byte {
		b := make([]byte, valSize)
		copy(b, fmt.Sprintf("doc-%06d rev-%d:", i, rev))
		return b
	}
	row := func(phase string, note string) kvstore.Stats {
		if note == "" {
			note = "-"
		}
		st := kv.Stats(ctx)
		t.AddRow(phase, mb(st.DiskBytes), mb(st.LiveBytes), f2(st.LiveRatio), note)
		return st
	}

	// Overwrite-heavy workload: every key written rounds+1 times through
	// the fsynced batch path, then a tenth of the keyspace deleted.
	const batch = 256
	for rev := 0; rev <= rounds; rev++ {
		for lo := 0; lo < nKeys; lo += batch {
			hi := min(lo+batch, nKeys)
			entries := make([]kvstore.Entry, 0, hi-lo)
			for i := lo; i < hi; i++ {
				entries = append(entries, kvstore.Entry{Key: key(i), Value: val(i, rev)})
			}
			if err := kv.BatchPut(ctx, "t", entries); err != nil {
				return nil, err
			}
		}
	}
	nDel := nKeys / 10
	for i := 0; i < nDel; i++ {
		if err := kv.Delete(ctx, "t", key(i)); err != nil {
			return nil, err
		}
	}

	// Snapshot every read result, compact, and demand identical reads.
	readAll := func() ([][]byte, error) {
		out := make([][]byte, nKeys)
		for i := 0; i < nKeys; i++ {
			v, err := kv.Get(ctx, "t", key(i))
			if i < nDel {
				if !errors.Is(err, types.ErrNotFound) {
					return nil, fmt.Errorf("bench compact: deleted %s: got %v, want not-found", key(i), err)
				}
				continue
			}
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	want, err := readAll()
	if err != nil {
		return nil, err
	}
	before := row("after overwrite-heavy writes", "")

	reclaimed, err := kv.Compact(ctx)
	if err != nil {
		return nil, err
	}
	after := row("after Compact", mb(reclaimed))
	got, err := readAll()
	if err != nil {
		return nil, err
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			return nil, fmt.Errorf("bench compact: %s changed across compaction", key(i))
		}
	}
	if after.DiskBytes > before.DiskBytes/2 {
		return nil, fmt.Errorf("bench compact: disk bytes %d -> %d: compaction reclaimed less than half",
			before.DiskBytes, after.DiskBytes)
	}

	// The compacted layout must replay: reopen the directory cold and read
	// everything back.
	if err := kv.Close(); err != nil {
		return nil, err
	}
	closed = true
	kv, err = kvstore.Open(context.Background(), kvstore.Config{Nodes: 1, NewBackend: newBackend})
	if err != nil {
		return nil, err
	}
	closed = false
	row("after close + reopen", "")
	got, err = readAll()
	if err != nil {
		return nil, err
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			return nil, fmt.Errorf("bench compact: %s changed across reopen", key(i))
		}
	}
	return []*Table{t}, nil
}
