package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/baseline"
	"rstore/internal/core"
	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/workload"
)

// RunFig11 regenerates Fig 11: end-to-end query latencies (simulated under
// the calibrated cost model) for Q1 (full version), Q2 (partial version) and
// Q3 (record evolution) as the max sub-chunk size k varies, on datasets A0
// and C0, comparing BOTTOM-UP, DEPTHFIRST and SHINGLE; DELTA runs at k=1
// only (it cannot compress across versions) and SUBCHUNK is reported once
// per dataset as the caption reference.
func RunFig11(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	ks := []int{1, 2, 5, 12, 25}
	var tables []*Table

	for _, dsName := range []string{"A0", "C0"} {
		spec, err := workload.SpecByName(dsName)
		if err != nil {
			return nil, err
		}
		spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
		spec.Pd = 0.05
		spec.Seed = opts.Seed
		c, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		capacity := chunkCapacityFor(spec)
		w := workload.NewWorkload(c, opts.Seed+3)
		q1 := w.FullVersionQueries(opts.Queries)
		q2 := w.PartialVersionQueries(opts.Queries, 0.10)
		q3 := w.RecordEvolutionQueries(opts.Queries)

		// SUBCHUNK reference (caption values in the paper).
		sc := &baseline.Subchunk{KV: mustKV(opts, 4)}
		if err := sc.Build(c); err != nil {
			return nil, err
		}
		scQ1 := runQueries(sc, q1)
		scQ2 := runQueries(sc, q2)
		scQ3 := runQueries(sc, q3)

		// DELTA at k=1.
		dl := &baseline.Delta{KV: mustKV(opts, 4), Capacity: capacity}
		if err := dl.Build(c); err != nil {
			return nil, err
		}
		dlQ1 := runQueries(dl, q1)
		dlQ2 := runQueries(dl, q2)
		dlQ3 := runQueries(dl, q3)

		for qi, queries := range [][]workload.Query{q1, q2, q3} {
			t := &Table{
				ID:    fmt.Sprintf("fig11-%s-q%d", dsName, qi+1),
				Title: fmt.Sprintf("Q%d latency vs sub-chunk size k (dataset %s)", qi+1, dsName),
				PaperNote: "BOTTOM-UP fastest for Q1/Q2; Q3 improves with larger k for all; DELTA slowest " +
					"(Q2 worse than Q1: reconstruct then filter); SUBCHUNK worst for Q1/Q2, best for Q3",
				Headers: []string{"k", "BOTTOM-UP", "DEPTHFIRST", "SHINGLE", "DELTA (k=1)", "SUBCHUNK (ref)"},
			}
			var dlT, scT time.Duration
			switch qi {
			case 0:
				dlT, scT = dlQ1, scQ1
			case 1:
				dlT, scT = dlQ2, scQ2
			default:
				dlT, scT = dlQ3, scQ3
			}
			for _, k := range ks {
				row := []string{d(k)}
				for _, mk := range []func() partition.Algorithm{
					func() partition.Algorithm { return partition.BottomUp{} },
					func() partition.Algorithm { return partition.DepthFirst{} },
					func() partition.Algorithm { return partition.Shingle{Seed: opts.Seed} },
				} {
					st, err := core.Open(context.Background(), core.Config{
						KV: mustKV(opts, 4), Partitioner: mk(), ChunkCapacity: capacity, SubChunkK: k,
					})
					if err != nil {
						return nil, err
					}
					eng := &baseline.Chunked{Store: st}
					if err := eng.Build(c); err != nil {
						return nil, fmt.Errorf("fig11: %s k=%d: %w", dsName, k, err)
					}
					row = append(row, fmtDur(runQueries(eng, queries)))
				}
				if k == 1 {
					row = append(row, fmtDur(dlT))
				} else {
					row = append(row, "-")
				}
				row = append(row, fmtDur(scT))
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// runQueries executes a query list on an engine and returns the average
// simulated latency.
func runQueries(e baseline.Engine, queries []workload.Query) time.Duration {
	var total time.Duration
	n := 0
	for _, q := range queries {
		var st baseline.Stats
		switch q.Kind {
		case workload.FullVersion:
			_, st, _ = e.GetVersion(q.Version)
		case workload.PartialVersion:
			_, st, _ = e.GetRange(q.LoKey, q.HiKey, q.Version)
		case workload.RecordEvolution:
			_, st, _ = e.GetHistory(q.Key)
		case workload.PointRecord:
			_, st, _ = e.GetRecord(q.Key, q.Version)
		}
		total += st.SimElapsed
		n++
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

func fmtDur(v time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(v.Microseconds())/1000)
}

func mustKV(opts Options, nodes int) *kvstore.Store {
	kv, err := opts.OpenCluster(kvstore.Config{Nodes: nodes, Cost: kvstore.DefaultCostModel()})
	if err != nil {
		panic(err) // Open only fails on invalid config; nodes is fixed here
	}
	return kv
}
