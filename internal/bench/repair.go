package bench

import (
	"context"
	"fmt"
	"time"

	"rstore/internal/kvstore"
)

// RunRepair measures the replication-repair extension: what a node outage
// costs the write path (hint parking), how fast a restarted replica
// converges through hint drain, and what the read-repair path costs when
// hints are disabled. It always runs on an in-process memory cluster —
// repair needs failure injection (SetNodeUp), which real remote daemons
// refuse — so the substrate override is deliberately ignored.
func RunRepair(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	nKeys := scaled(4000, opts.RecordFrac, 64)
	valSize := scaled(1024, opts.SizeFrac, 64)
	ctx := context.Background()

	t := &Table{
		ID:        "repair",
		Title:     "replication repair: hinted handoff + read repair convergence (4 nodes, rf=3)",
		PaperNote: "extension beyond the paper: Dynamo-style repair under the paper's replicated KVS assumption",
		Headers:   []string{"phase", "keys", "wall ms", "hints q/replayed", "repair writes", "tombstones gc'd"},
	}

	val := func(rev int) []byte {
		b := make([]byte, valSize)
		copy(b, fmt.Sprintf("rev-%d:", rev))
		return b
	}
	key := func(i int) string { return fmt.Sprintf("doc-%06d", i) }

	row := func(phase string, keys int, wall time.Duration, st kvstore.Stats) {
		t.AddRow(phase, d(keys), fmt.Sprintf("%.1f", float64(wall.Microseconds())/1000),
			fmt.Sprintf("%d/%d", st.HintsQueued, st.HintsReplayed),
			d(int(st.RepairWrites)), d(int(st.TombstonesGCed)))
	}
	waitUntil := func(what string, cond func() bool) error {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("bench repair: timed out waiting for %s", what)
	}
	fast := kvstore.RepairOptions{HintInterval: time.Millisecond, HintMaxBackoff: 10 * time.Millisecond}

	// Phase 1-3 on one cluster: healthy writes (repair idle), degraded
	// writes (hints parked per missed replica write), and hint-drain
	// convergence after the node returns.
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 4, ReplicationFactor: 3, Repair: fast})
	if err != nil {
		return nil, err
	}
	defer kv.Close()

	start := time.Now()
	for i := 0; i < nKeys; i++ {
		if err := kv.Put(ctx, "t", key(i), val(0)); err != nil {
			return nil, err
		}
	}
	row("healthy writes", nKeys, time.Since(start), kv.Stats(ctx))

	if err := kv.SetNodeUp(0, false); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < nKeys; i++ {
		if err := kv.Put(ctx, "t", key(i), val(1)); err != nil {
			return nil, err
		}
	}
	nDel := nKeys / 10
	for i := 0; i < nDel; i++ {
		if err := kv.Delete(ctx, "t", key(i)); err != nil {
			return nil, err
		}
	}
	row("degraded writes (1 node down)", nKeys+nDel, time.Since(start), kv.Stats(ctx))

	start = time.Now()
	if err := kv.SetNodeUp(0, true); err != nil {
		return nil, err
	}
	if err := waitUntil("hint drain", func() bool { return kv.Stats(ctx).HintsPending == 0 }); err != nil {
		return nil, err
	}
	row("hint drain after restart", int(kv.Stats(ctx).HintsReplayed), time.Since(start), kv.Stats(ctx))

	// Phase 4 on a fresh cluster with hints disabled: the same outage
	// converges through read repair alone, paying one write-back per
	// stale replica observed by the full read sweep.
	noHints := fast
	noHints.DisableHints = true
	kv2, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 4, ReplicationFactor: 3, Repair: noHints})
	if err != nil {
		return nil, err
	}
	defer kv2.Close()
	for i := 0; i < nKeys; i++ {
		if err := kv2.Put(ctx, "t", key(i), val(0)); err != nil {
			return nil, err
		}
	}
	if err := kv2.SetNodeUp(0, false); err != nil {
		return nil, err
	}
	for i := 0; i < nKeys; i++ {
		if err := kv2.Put(ctx, "t", key(i), val(1)); err != nil {
			return nil, err
		}
	}
	if err := kv2.SetNodeUp(0, true); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < nKeys; i++ {
		if _, err := kv2.Get(ctx, "t", key(i)); err != nil {
			return nil, err
		}
	}
	// The write-backs are asynchronous; wait for the counter to quiesce
	// (every key node 0 replicates is observed stale exactly once).
	stable, lastChange := int64(-1), time.Now()
	if err := waitUntil("read repair write-backs", func() bool {
		cur := kv2.Stats(ctx).RepairWrites
		if cur != stable {
			stable, lastChange = cur, time.Now()
			return false
		}
		return cur > 0 && time.Since(lastChange) > 25*time.Millisecond
	}); err != nil {
		return nil, err
	}
	row("read repair sweep (hints off)", nKeys, time.Since(start), kv2.Stats(ctx))

	return []*Table{t}, nil
}
