package bench

import (
	"fmt"

	"rstore/internal/partition"
	"rstore/internal/subchunk"
	"rstore/internal/workload"
)

// fig10Ks are the max sub-chunk sizes swept in Fig 10.
var fig10Ks = []int{1, 2, 5, 12, 25, 50}

// RunFig10 regenerates Fig 10: partitioning quality (total version span) and
// compression ratio as the max sub-chunk size k varies, for datasets A0, C0
// and D0 at P_d ∈ {10%, 5%, 1%}, under BOTTOM-UP, DEPTHFIRST and SHINGLE.
// Two opposing factors move the span (§5.3): larger sub-chunks fetch fewer
// relevant records per chunk (span up), while higher compression shrinks the
// chunk count (span down); smaller P_d strengthens the second factor until
// it dominates.
func RunFig10(opts Options) ([]*Table, error) {
	opts = opts.withDefaults()
	var tables []*Table
	for _, dsName := range []string{"A0", "C0", "D0"} {
		for _, pd := range []float64{0.10, 0.05, 0.01} {
			spec, err := workload.SpecByName(dsName)
			if err != nil {
				return nil, err
			}
			spec = spec.Scaled(opts.VersionFrac, opts.RecordFrac, opts.SizeFrac)
			// P_d granularity needs large-enough records (mutations rewrite
			// whole 16-byte fields) and the k sweep needs per-key version
			// chains longer than k; floor both.
			if spec.RecordSize < 1024 {
				spec.RecordSize = 1024
			}
			if spec.Versions < 64 {
				spec.Versions = 64
			}
			if spec.RecordsPerVersion > 600 {
				spec.RecordsPerVersion = 600
			}
			spec.Pd = pd
			spec.Seed = opts.Seed
			c, err := workload.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("fig10: %s: %w", dsName, err)
			}
			capacity := chunkCapacityFor(spec)

			t := &Table{
				ID:    fmt.Sprintf("fig10-%s-pd%d", dsName, int(pd*100)),
				Title: fmt.Sprintf("span & compression vs sub-chunk size k (dataset %s, P_d=%.0f%%)", dsName, pd*100),
				PaperNote: "BOTTOM-UP best everywhere; span falls with P_d at fixed k; at P_d=10% span grows " +
					"with k (factor 1 dominant), at 1% it falls with k (factor 2 dominant)",
				Headers: []string{"k", "compression", "BOTTOM-UP", "DEPTHFIRST", "SHINGLE"},
			}
			for _, k := range fig10Ks {
				res, err := subchunk.Build(c, k, capacity)
				if err != nil {
					return nil, fmt.Errorf("fig10: %s k=%d: %w", dsName, k, err)
				}
				row := []string{d(k), f2(res.CompressionRatio())}
				for _, algo := range []partition.Algorithm{
					partition.BottomUp{}, partition.DepthFirst{}, partition.Shingle{Seed: opts.Seed},
				} {
					a, err := algo.Partition(res.In)
					if err != nil {
						return nil, fmt.Errorf("fig10: %s k=%d %s: %w", dsName, k, algo.Name(), err)
					}
					// Span on the transformed tree under-reports (duplicate
					// versions dropped); measure against the original tree
					// by mapping records through items.
					row = append(row, d(originalSpan(c.NumVersions(), res, a)))
				}
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// originalSpan computes total version span over the ORIGINAL version tree
// for a sub-chunked assignment: each original version's span is the span of
// the transformed version carrying its item set (duplicates dropped by the
// transform share their ancestor's span exactly, by construction).
func originalSpan(numVersions int, res *subchunk.Result, a *partition.Assignment) int {
	chunkOfItem := a.ChunkOf(len(res.In.Items))
	spans := make([]map[uint32]struct{}, res.In.Graph.NumVersions())
	for v := range spans {
		spans[v] = map[uint32]struct{}{}
	}
	partition.ForEachVersionLive(res.In, func(v, item uint32) {
		spans[v][chunkOfItem[item]] = struct{}{}
	})
	total := 0
	for v := 0; v < numVersions; v++ {
		total += len(spans[res.TransformedOf[v]])
	}
	return total
}
