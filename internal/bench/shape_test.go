package bench

import (
	"strconv"
	"testing"
)

// Shape regression tests: the qualitative claims EXPERIMENTS.md makes about
// each regenerated artifact are asserted here, so a change that silently
// breaks a paper-shape property fails CI. They run at a small scale chosen
// to keep the suite fast while preserving the shapes.

func shapeOpts() Options {
	return Options{VersionFrac: 0.01, RecordFrac: 0.01, SizeFrac: 0.1, Queries: 6, Seed: 42}
}

func cellInt(t *testing.T, cell string) int {
	t.Helper()
	v, err := strconv.Atoi(cell)
	if err != nil {
		t.Fatalf("bad integer cell %q", cell)
	}
	return v
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad float cell %q", cell)
	}
	return v
}

// TestShapeFig8 asserts the per-dataset ordering claims: BOTTOM-UP beats
// DELTA and BREADTHFIRST never beats DEPTHFIRST.
func TestShapeFig8(t *testing.T) {
	tables, err := RunFig8(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		for _, row := range tab.Rows {
			ds := row[0]
			bu := cellInt(t, row[1])
			dfs := cellInt(t, row[3])
			bfs := cellInt(t, row[4])
			delta := cellInt(t, row[5])
			if bu > delta {
				t.Errorf("%s: BOTTOM-UP %d worse than DELTA %d", ds, bu, delta)
			}
			if bfs < dfs {
				t.Errorf("%s: BREADTHFIRST %d beats DEPTHFIRST %d", ds, bfs, dfs)
			}
		}
	}
}

// TestShapeFig9 asserts span decreases (weakly) as β grows.
func TestShapeFig9(t *testing.T) {
	tables, err := RunFig9(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	prev := 1 << 62
	for _, row := range rows {
		q1 := cellInt(t, row[1])
		if q1 > prev {
			t.Fatalf("β=%s: Q1 span %d increased over smaller β's %d", row[0], q1, prev)
		}
		prev = q1
	}
	// The spread must be visible: β=5 strictly worse than unlimited.
	first := cellInt(t, rows[0][1])
	last := cellInt(t, rows[len(rows)-1][1])
	if first <= last {
		t.Fatalf("β sweep flat: %d vs %d", first, last)
	}
}

// TestShapeFig10 asserts, for each dataset/P_d panel, that the compression
// ratio is non-decreasing in k, and that at fixed k the BOTTOM-UP span does
// not increase as P_d shrinks (factor 2 strengthens).
func TestShapeFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 shape test is slow")
	}
	tables, err := RunFig10(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Group panels per dataset: pd10, pd5, pd1 in order.
	byDataset := map[string][]*Table{}
	order := []string{}
	for _, tab := range tables {
		ds := tab.ID[6:8] // fig10-XX-pdN
		if _, ok := byDataset[ds]; !ok {
			order = append(order, ds)
		}
		byDataset[ds] = append(byDataset[ds], tab)
	}
	for _, ds := range order {
		panels := byDataset[ds]
		if len(panels) != 3 {
			t.Fatalf("%s: %d panels", ds, len(panels))
		}
		for _, tab := range panels {
			prev := 0.0
			for _, row := range tab.Rows {
				ratio := cellFloat(t, row[1])
				if ratio+1e-9 < prev {
					t.Errorf("%s: compression ratio decreased with k: %v", tab.ID, tab.Rows)
					break
				}
				prev = ratio
			}
		}
		// Span at the largest k: pd10 ≥ pd5 ≥ pd1 (within 2% tolerance for
		// packing noise).
		spanAtMaxK := func(tab *Table) int {
			return cellInt(t, tab.Rows[len(tab.Rows)-1][2])
		}
		s10, s5, s1 := spanAtMaxK(panels[0]), spanAtMaxK(panels[1]), spanAtMaxK(panels[2])
		if float64(s5) > float64(s10)*1.02 || float64(s1) > float64(s5)*1.02 {
			t.Errorf("%s: span at max k not improving with P_d: %d, %d, %d", ds, s10, s5, s1)
		}
	}
}

// TestShapeFig13 asserts the largest batch is never worse than the smallest
// at the final checkpoint.
func TestShapeFig13(t *testing.T) {
	tables, err := RunFig13(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		rows := tab.Rows
		if len(rows) < 2 {
			t.Fatalf("%s: %d rows", tab.ID, len(rows))
		}
		last := len(rows[0]) - 1
		smallest := cellFloat(t, rows[0][last])
		largest := cellFloat(t, rows[len(rows)-1][last])
		if largest > smallest+1e-9 {
			t.Errorf("%s: largest batch ratio %.3f worse than smallest %.3f",
				tab.ID, largest, smallest)
		}
	}
}

// TestShapeReplication asserts read balancing with higher rf does not slow
// queries down.
func TestShapeReplication(t *testing.T) {
	tables, err := RunAblationReplication(shapeOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	q1 := func(row []string) float64 {
		return cellFloat(t, row[2][:len(row[2])-2]) // strip "ms"
	}
	base := q1(rows[0])           // rf=1
	best := q1(rows[len(rows)-1]) // rf=3 balanced
	if best > base*1.05 {
		t.Errorf("replication+balancing slowed Q1: %.3f → %.3f ms", base, best)
	}
}
