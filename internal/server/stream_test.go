package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rstore/internal/core"
	"rstore/internal/engine"
	"rstore/internal/engine/memory"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// gatingBackend wraps the memory backend and, once armed, blocks every
// chunk-table Get after the first until the caller's context dies. It
// counts chunk fetches so the tests can prove what the store did and did
// not read.
type gatingBackend struct {
	*memory.Backend
	chunkGets atomic.Int64
	armed     atomic.Bool
	blocked   chan struct{} // signaled when a Get parks on the gate
}

func (g *gatingBackend) Get(ctx context.Context, table, key string) ([]byte, bool, error) {
	if table == core.TableChunks {
		n := g.chunkGets.Add(1)
		if g.armed.Load() && n > 1 {
			select {
			case g.blocked <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return nil, false, ctx.Err()
		}
	}
	return g.Backend.Get(ctx, table, key)
}

// buildMultiChunkStore returns a server over a store whose version 0 spans
// several chunks, fetched one per round (QueryFetchBatch 1, cache off).
func buildMultiChunkStore(t *testing.T) (*httptest.Server, *core.Store, *gatingBackend) {
	t.Helper()
	gate := &gatingBackend{Backend: memory.New(), blocked: make(chan struct{}, 1)}
	kv, err := kvstore.Open(context.Background(), kvstore.Config{NewBackend: func(int) (engine.Backend, error) { return gate, nil }})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Open(context.Background(), core.Config{KV: kv, ChunkCapacity: 256, QueryFetchBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	puts := map[types.Key][]byte{}
	for i := 0; i < 16; i++ {
		puts[types.Key(fmt.Sprintf("doc-%02d", i))] = []byte(strings.Repeat("x", 200))
	}
	ctx := context.Background()
	if _, err := st.Commit(ctx, types.InvalidVersion, core.Change{Puts: puts}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if n := st.NumChunks(); n < 4 {
		t.Fatalf("need a multi-chunk version, got %d chunks", n)
	}
	ts := httptest.NewServer(New(st))
	t.Cleanup(ts.Close)
	return ts, st, gate
}

// TestHTTPVersionStreamsBeforeLastChunk is the end-to-end streaming
// acceptance test: an HTTP /version query on a version larger than one
// fetch batch delivers its first NDJSON record while the store is still
// blocked fetching a later chunk — i.e. before the last chunk was fetched —
// and cancelling the request stops further chunk fetches.
func TestHTTPVersionStreamsBeforeLastChunk(t *testing.T) {
	ts, st, gate := buildMultiChunkStore(t)
	total := int64(st.NumChunks())
	gate.armed.Store(true)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/version/0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The first record line must arrive while chunk fetch #2 is parked on
	// the gate — the server cannot have fetched, let alone buffered, the
	// whole version.
	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	if err != nil {
		t.Fatalf("first stream line: %v", err)
	}
	var sl StreamLine
	if err := json.Unmarshal(line, &sl); err != nil || sl.Record == nil {
		t.Fatalf("first line is not a record: %q (%v)", line, err)
	}
	select {
	case <-gate.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("second chunk fetch never started")
	}
	if got := gate.chunkGets.Load(); got >= total {
		t.Fatalf("first record only after %d/%d chunk fetches — not streaming", got, total)
	}

	// Cancelling the request must stop the chunk fetches: the count settles
	// strictly below the version's chunk span.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	var settled int64
	for {
		n := gate.chunkGets.Load()
		time.Sleep(50 * time.Millisecond)
		if gate.chunkGets.Load() == n {
			settled = n
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chunk fetches never settled after cancel")
		}
	}
	if settled >= total {
		t.Fatalf("cancelled request still fetched %d/%d chunks", settled, total)
	}
}

// TestHTTPStreamStatsTrailer: the stats trailer closes a successful stream
// and reflects the full retrieval.
func TestHTTPStreamStatsTrailer(t *testing.T) {
	ts, st, _ := buildMultiChunkStore(t)
	resp, qr, errLine := getStream(t, ts.URL+"/version/0")
	if errLine != "" {
		t.Fatalf("error line: %s", errLine)
	}
	if resp.StatusCode != http.StatusOK || len(qr.Records) != 16 {
		t.Fatalf("status %d, %d records", resp.StatusCode, len(qr.Records))
	}
	if qr.Stats.Records != 16 || qr.Stats.Span != st.NumChunks() {
		t.Fatalf("trailer stats: %+v (chunks %d)", qr.Stats, st.NumChunks())
	}
}

// TestHTTPRangeAboveSentinel: keys sorting above the old 0xff,0xff,0xff,0xff
// sentinel are reachable through an unbounded range — the bug the explicit
// unbounded form replaces.
func TestHTTPRangeAboveSentinel(t *testing.T) {
	st, err := core.Open(context.Background(), core.Config{ChunkCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	high := types.Key("\xff\xff\xff\xff\xff-above-the-old-sentinel")
	if _, err := st.Commit(ctx, types.InvalidVersion, core.Change{Puts: map[types.Key][]byte{
		"a": []byte("1"), high: []byte("2"),
	}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st))
	defer ts.Close()

	_, qr, errLine := getStream(t, ts.URL+"/version/0/range?lo=a")
	if errLine != "" {
		t.Fatalf("error line: %s", errLine)
	}
	if len(qr.Records) != 2 {
		t.Fatalf("unbounded range returned %d records, want 2 (high key excluded?)", len(qr.Records))
	}
	// The library-level unbounded form agrees.
	recs, _, err := st.GetRangeAll(ctx, core.KeyRangeFrom("a"), 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("KeyRangeFrom: %d records, %v", len(recs), err)
	}
	// A bounded range still excludes it.
	recs, _, err = st.GetRangeAll(ctx, core.KeyRange("a", "b"), 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("bounded range: %d records, %v", len(recs), err)
	}
}

// TestBranchesSurfacesTipErrors: a branch whose tip lookup fails appears
// under errors instead of being silently dropped.
func TestBranchesSurfacesTipErrors(t *testing.T) {
	st, err := core.Open(context.Background(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st)
	var logged []string
	srv.SetLogf(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/branches")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BranchesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// A fresh store has main unset (-1) and no errors; the shape must carry
	// both fields.
	if out.Branches["main"] != -1 || len(out.Errors) != 0 {
		t.Fatalf("branches: %+v", out)
	}
}
