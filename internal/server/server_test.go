package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"rstore/internal/core"
	"rstore/internal/types"
)

func newServer(t *testing.T) (*httptest.Server, *core.Store) {
	t.Helper()
	st, err := core.Open(context.Background(), core.Config{ChunkCapacity: 4096, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st))
	t.Cleanup(ts.Close)
	return ts, st
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// getStream reads an NDJSON streaming query response, reassembling it into
// the buffered QueryResponse shape for assertions. Failed requests (non-2xx)
// return without decoding; a mid-stream error line is returned separately.
func getStream(t *testing.T, url string) (*http.Response, QueryResponse, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode >= 300 {
		return resp, qr, ""
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("streaming endpoint content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	sawStats := false
	for {
		var line StreamLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("stream line: %v", err)
		}
		switch {
		case line.Record != nil:
			if sawStats {
				t.Fatal("record after the stats trailer")
			}
			qr.Records = append(qr.Records, *line.Record)
		case line.Stats != nil:
			qr.Stats = *line.Stats
			sawStats = true
		case line.Error != "":
			return resp, qr, line.Error
		}
	}
	if !sawStats {
		t.Fatal("stream ended without a stats trailer")
	}
	return resp, qr, ""
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHTTPCommitAndQueries(t *testing.T) {
	ts, _ := newServer(t)

	// Root commit advancing main.
	var cr CommitResponse
	resp := postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: -1,
		Puts:   map[string][]byte{"doc-a": []byte(`{"v":0}`), "doc-b": []byte(`{"v":0}`)},
		Branch: "main",
	}, &cr)
	if resp.StatusCode != 200 || cr.Version != 0 {
		t.Fatalf("root commit: %d %+v", resp.StatusCode, cr)
	}

	// Child commit.
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent:  0,
		Puts:    map[string][]byte{"doc-a": []byte(`{"v":1}`)},
		Deletes: []string{"doc-b"},
		Branch:  "main",
	}, &cr)
	if cr.Version != 1 {
		t.Fatalf("second commit version %d", cr.Version)
	}

	// Full version by id and by branch name, streamed as NDJSON.
	for _, ref := range []string{"1", "main"} {
		resp, qr, errLine := getStream(t, ts.URL+"/version/"+ref)
		if errLine != "" {
			t.Fatalf("version/%s: error line %q", ref, errLine)
		}
		if resp.StatusCode != 200 || len(qr.Records) != 1 {
			t.Fatalf("version/%s: %d, %d records", ref, resp.StatusCode, len(qr.Records))
		}
		if qr.Records[0].Key != "doc-a" || string(qr.Records[0].Value) != `{"v":1}` {
			t.Fatalf("version/%s record: %+v", ref, qr.Records[0])
		}
		if qr.Stats.Span == 0 {
			t.Fatalf("version/%s: zero span", ref)
		}
		if qr.Stats.Records != len(qr.Records) {
			t.Fatalf("version/%s: trailer counts %d records, stream had %d", ref, qr.Stats.Records, len(qr.Records))
		}
	}

	// Point query at the old version still sees the old value.
	var qr QueryResponse
	getJSON(t, ts.URL+"/version/0/record/doc-a", &qr)
	if len(qr.Records) != 1 || string(qr.Records[0].Value) != `{"v":0}` {
		t.Fatalf("old record: %+v", qr.Records)
	}

	// Missing key → 404.
	resp = getJSON(t, ts.URL+"/version/0/record/ghost", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost record: %d", resp.StatusCode)
	}

	// Range retrieval.
	_, qr2, _ := getStream(t, ts.URL+"/version/0/range?lo=doc-a&hi=doc-b")
	if len(qr2.Records) != 1 || qr2.Records[0].Key != "doc-a" {
		t.Fatalf("range: %+v", qr2.Records)
	}

	// History.
	_, qr3, _ := getStream(t, ts.URL+"/history/doc-a")
	if len(qr3.Records) != 2 {
		t.Fatalf("history: %d records", len(qr3.Records))
	}

	// Branches.
	var branches BranchesResponse
	getJSON(t, ts.URL+"/branches", &branches)
	if branches.Branches["main"] != 1 || len(branches.Errors) != 0 {
		t.Fatalf("branches: %+v", branches)
	}

	// Flush + stats.
	resp = postJSON(t, ts.URL+"/flush", struct{}{}, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("flush: %d", resp.StatusCode)
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["versions"].(float64) != 2 || stats["pending"].(float64) != 0 {
		t.Fatalf("stats: %v", stats)
	}
}

func TestHTTPSetBranch(t *testing.T) {
	ts, st := newServer(t)
	if _, err := st.Commit(context.Background(), types.InvalidVersion, core.Change{}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/branch/dev",
		bytes.NewReader([]byte(`{"version":0}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("set branch: %d", resp.StatusCode)
	}
	tip, err := st.Tip("dev")
	if err != nil || tip != 0 {
		t.Fatalf("tip: %v %v", tip, err)
	}
	// Unknown version rejected.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/branch/dev",
		bytes.NewReader([]byte(`{"version":99}`)))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		t.Fatal("unknown version accepted")
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := newServer(t)
	// Commit with bad JSON.
	resp, err := http.Post(ts.URL+"/commit", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	// Query on empty store.
	resp = getJSON(t, ts.URL+"/version/0", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty store query: %d", resp.StatusCode)
	}
}

func TestHTTPMergeCommit(t *testing.T) {
	ts, st := newServer(t)
	var cr CommitResponse
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: -1, Puts: map[string][]byte{"a": []byte("0")},
	}, &cr)
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: 0, Puts: map[string][]byte{"a": []byte("1")},
	}, &cr)
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: 0, Puts: map[string][]byte{"b": []byte("2")},
	}, &cr)
	// Merge v1 (primary) + v2.
	resp := postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: 1, Parents: []int64{2},
		Puts: map[string][]byte{"b": []byte("2")},
	}, &cr)
	if resp.StatusCode != 200 {
		t.Fatalf("merge commit: %d", resp.StatusCode)
	}
	parents := st.Graph().Parents(types.VersionID(cr.Version))
	if len(parents) != 2 || parents[0] != 1 || parents[1] != 2 {
		t.Fatalf("merge parents: %v", parents)
	}
	_, qr, _ := getStream(t, fmt.Sprintf("%s/version/%d", ts.URL, cr.Version))
	if len(qr.Records) != 2 {
		t.Fatalf("merge contents: %d records", len(qr.Records))
	}
}

func TestHTTPDiff(t *testing.T) {
	ts, _ := newServer(t)
	var cr CommitResponse
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: -1, Puts: map[string][]byte{"a": []byte("0"), "b": []byte("0")},
	}, &cr)
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: 0, Puts: map[string][]byte{"a": []byte("1")}, Deletes: []string{"b"},
	}, &cr)

	var d DiffJSON
	resp := getJSON(t, ts.URL+"/diff?a=0&b=1", &d)
	if resp.StatusCode != 200 {
		t.Fatalf("diff status %d", resp.StatusCode)
	}
	if len(d.Added) != 1 || len(d.Removed) != 2 || len(d.Modified) != 1 {
		t.Fatalf("diff: %+v", d)
	}
	if d.Added[0].Key != "a" || d.Added[0].OriginVersion != 1 {
		t.Fatalf("added: %+v", d.Added)
	}
	// Unknown version refs 404.
	if resp := getJSON(t, ts.URL+"/diff?a=0&b=99", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("diff with bad version: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/diff?a=nope&b=0", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("diff with bad ref: %d", resp.StatusCode)
	}
}

func TestHTTPRangeDefaults(t *testing.T) {
	ts, _ := newServer(t)
	var cr CommitResponse
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: -1, Puts: map[string][]byte{"a": []byte("1"), "z": []byte("2")},
	}, &cr)
	// No hi bound: the explicit unbounded range, not a sentinel key.
	resp, qr, _ := getStream(t, ts.URL+"/version/0/range?lo=a")
	if resp.StatusCode != 200 || len(qr.Records) != 2 {
		t.Fatalf("open-ended range: %d, %d records", resp.StatusCode, len(qr.Records))
	}
	// Bad version in range 404s.
	if resp := getJSON(t, ts.URL+"/version/42/range?lo=a", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("range bad version: %d", resp.StatusCode)
	}
	// History of a missing key 404s.
	if resp := getJSON(t, ts.URL+"/history/ghost", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost history: %d", resp.StatusCode)
	}
}

// Error-path coverage: the JSON API must translate malformed input and
// unknown names into the right status codes with a JSON error body, and
// /stats must keep its wire shape.

// errBody decodes the {"error": ...} payload every failure returns.
func errBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if out["error"] == "" {
		t.Fatal("error body missing the error field")
	}
	return out["error"]
}

func TestHTTPMalformedCommitJSON(t *testing.T) {
	ts, _ := newServer(t)
	resp, err := http.Post(ts.URL+"/commit", "application/json",
		bytes.NewReader([]byte(`{"parent": -1, "puts": {`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated commit JSON: status %d", resp.StatusCode)
	}
	errBody(t, resp)

	// Valid JSON, wrong shape for the puts map: still a 400, not a panic.
	resp2, err := http.Post(ts.URL+"/commit", "application/json",
		bytes.NewReader([]byte(`{"parent": -1, "puts": ["not","a","map"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("mistyped commit JSON: status %d", resp2.StatusCode)
	}
	errBody(t, resp2)
}

func TestHTTPSetBranchErrors(t *testing.T) {
	ts, _ := newServer(t)
	var cr CommitResponse
	if resp := postJSON(t, ts.URL+"/commit", CommitRequest{Parent: -1, Branch: "main"}, &cr); resp.StatusCode != 200 {
		t.Fatalf("root commit: %d", resp.StatusCode)
	}

	put := func(name, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/branch/"+name, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Garbage body.
	resp := put("dev", `{"version": `)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage branch body: status %d", resp.StatusCode)
	}
	errBody(t, resp)

	// Unknown version.
	resp = put("dev", `{"version": 999}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("branch to unknown version: status %d", resp.StatusCode)
	}
	errBody(t, resp)

	// The failed attempts must not have created the branch.
	var branches BranchesResponse
	getJSON(t, ts.URL+"/branches", &branches)
	if _, ok := branches.Branches["dev"]; ok {
		t.Fatal("failed PUT /branch created the branch anyway")
	}

	// Queries against the unknown branch name: 404, not a parse panic.
	r2 := getJSON(t, ts.URL+"/version/dev", nil)
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown branch: status %d", r2.StatusCode)
	}
}

func TestHTTPRangeErrors(t *testing.T) {
	ts, _ := newServer(t)
	var cr CommitResponse
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: -1, Branch: "main",
		Puts: map[string][]byte{"a": []byte("1"), "b": []byte("2"), "z": []byte("3")},
	}, &cr)

	// Unknown version in the path.
	if resp := getJSON(t, ts.URL+"/version/42/range?lo=a&hi=z", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("range on unknown version: status %d", resp.StatusCode)
	}
	// Inverted bounds select nothing — an empty result, not an error.
	resp, q, _ := getStream(t, ts.URL+"/version/0/range?lo=z&hi=a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inverted range: status %d", resp.StatusCode)
	}
	if len(q.Records) != 0 {
		t.Fatalf("inverted range returned %d records", len(q.Records))
	}
	// Omitted hi reads to the top of the keyspace.
	resp, q, _ = getStream(t, ts.URL+"/version/0/range?lo=b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open range: status %d", resp.StatusCode)
	}
	if len(q.Records) != 2 {
		t.Fatalf("open range returned %d records, want 2 (b, z)", len(q.Records))
	}
	// A present-but-empty hi stays a bound — [b, "") selects nothing,
	// matching the library — instead of silently going unbounded.
	resp, q, _ = getStream(t, ts.URL+"/version/0/range?lo=b&hi=")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-hi range: status %d", resp.StatusCode)
	}
	if len(q.Records) != 0 {
		t.Fatalf("empty-hi range returned %d records, want 0", len(q.Records))
	}
}

func TestHTTPStatsShape(t *testing.T) {
	ts, _ := newServer(t)
	postJSON(t, ts.URL+"/commit", CommitRequest{
		Parent: -1, Branch: "main", Puts: map[string][]byte{"k": []byte("v")},
	}, nil)
	var stats map[string]json.Number
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&stats); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	for _, field := range []string{"versions", "chunks", "pending", "total_span", "bytes_stored", "requests"} {
		n, ok := stats[field]
		if !ok {
			t.Fatalf("stats missing %q (got %v)", field, stats)
		}
		if _, err := n.Int64(); err != nil {
			t.Fatalf("stats %q is not numeric: %v", field, n)
		}
	}
	if v, _ := stats["versions"].Int64(); v != 1 {
		t.Fatalf("versions = %v, want 1", stats["versions"])
	}
}
