// Package server implements the HTTP application-server interface of paper
// §2.4: a JSON API exposing commit, version/record/range/history retrieval,
// and branch management over one RStore instance. Multiple servers can front
// the same backing cluster in read-only mode (the paper notes multi-writer
// coordination is not supported).
//
// Query endpoints that return record sets (/version, /range, /history)
// stream NDJSON: one {"record": ...} line per record as chunks arrive from
// the storage nodes, a final {"stats": ...} trailer line once the stream is
// complete, and — should the query fail after records were already sent — a
// terminating {"error": ...} line. The handlers drive the store's cursor
// API under the request's context, so a client that disconnects (or times
// out) stops the node-side chunk fetches instead of making the store finish
// a scan nobody is waiting for. Server memory per query is bounded by the
// store's fetch batch, not the version size.
//
// Mutating endpoints (/commit, /flush, /branch) deliberately detach from
// the request's cancellation (context.WithoutCancel): a client that gives
// up mid-commit must not abort a durable write half-way.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"log"
	"net/http"
	"strconv"
	"time"

	"rstore/internal/core"
	"rstore/internal/types"
)

// Server is the HTTP handler set.
type Server struct {
	store *core.Store
	mux   *http.ServeMux
	// logf reports server-side conditions that cannot reach the client
	// (encode failures after headers are sent, skipped branch tips).
	// Defaults to log.Printf; replace via SetLogf (tests, custom sinks).
	logf func(format string, args ...any)
}

// New builds a server over a store.
func New(store *core.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), logf: log.Printf}
	s.mux.HandleFunc("POST /commit", s.handleCommit)
	s.mux.HandleFunc("GET /version/{id}", s.handleVersion)
	s.mux.HandleFunc("GET /version/{id}/record/{key}", s.handleRecord)
	s.mux.HandleFunc("GET /version/{id}/range", s.handleRange)
	s.mux.HandleFunc("GET /history/{key}", s.handleHistory)
	s.mux.HandleFunc("GET /diff", s.handleDiff)
	s.mux.HandleFunc("GET /branches", s.handleBranches)
	s.mux.HandleFunc("PUT /branch/{name}", s.handleSetBranch)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// SetLogf redirects the server's diagnostic log line sink (nil restores
// log.Printf).
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = log.Printf
	}
	s.logf = logf
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// wire types

// RecordJSON is a record on the wire; values are base64 (documents may be
// binary).
type RecordJSON struct {
	Key           string `json:"key"`
	OriginVersion uint32 `json:"origin_version"`
	Value         []byte `json:"value"`
}

func toJSON(r types.Record) RecordJSON {
	return RecordJSON{Key: string(r.CK.Key), OriginVersion: uint32(r.CK.Version), Value: r.Value}
}

// CommitRequest is the commit payload. Parent -1 creates the root.
type CommitRequest struct {
	Parent  int64             `json:"parent"`
	Parents []int64           `json:"parents,omitempty"` // merge commits
	Puts    map[string][]byte `json:"puts,omitempty"`
	Deletes []string          `json:"deletes,omitempty"`
	Branch  string            `json:"branch,omitempty"` // advance this branch on success
}

// CommitResponse returns the generated version id.
type CommitResponse struct {
	Version uint32 `json:"version"`
}

// QueryResponse wraps records plus retrieval statistics (point queries;
// the set-returning endpoints stream StreamLines instead).
type QueryResponse struct {
	Records []RecordJSON `json:"records"`
	Stats   StatsJSON    `json:"stats"`
}

// StreamLine is one NDJSON line of a streaming query response. Exactly one
// field is set: a record, the closing stats trailer, or a terminating
// error.
type StreamLine struct {
	Record *RecordJSON `json:"record,omitempty"`
	Stats  *StatsJSON  `json:"stats,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// StatsJSON mirrors core.QueryStats.
type StatsJSON struct {
	Span         int     `json:"span"`
	Requests     int     `json:"requests"`
	BytesRead    int64   `json:"bytes_read"`
	SimElapsedMS float64 `json:"sim_elapsed_ms"`
	Records      int     `json:"records"`
	WastedChunks int     `json:"wasted_chunks"`
}

func statsJSON(st core.QueryStats) StatsJSON {
	return StatsJSON{
		Span: st.Span, Requests: st.Requests, BytesRead: st.BytesRead,
		SimElapsedMS: float64(st.SimElapsed.Microseconds()) / 1000,
		Records:      st.Records, WastedChunks: st.WastedChunks,
	}
}

// BranchesResponse lists branch tips (-1 = unset). Branches whose tip
// lookup failed are reported under Errors instead of being silently
// dropped.
type BranchesResponse struct {
	Branches map[string]int64  `json:"branches"`
	Errors   map[string]string `json:"errors,omitempty"`
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad commit body: %w", err))
		return
	}
	ch := core.Change{Puts: map[types.Key][]byte{}}
	for k, v := range req.Puts {
		ch.Puts[types.Key(k)] = v
	}
	for _, k := range req.Deletes {
		ch.Deletes = append(ch.Deletes, types.Key(k))
	}
	parents := []types.VersionID{versionFromWire(req.Parent)}
	for _, p := range req.Parents {
		parents = append(parents, versionFromWire(p))
	}
	// Detached from the request's cancellation: once a commit starts its
	// durable write, a dropped client must not abort it half-way.
	ctx := context.WithoutCancel(r.Context())
	v, err := s.store.CommitMerge(ctx, parents, ch)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	if req.Branch != "" {
		if err := s.store.SetBranch(ctx, req.Branch, v); err != nil {
			httpError(w, statusOf(err), err)
			return
		}
	}
	s.writeJSON(w, CommitResponse{Version: uint32(v)})
}

func versionFromWire(v int64) types.VersionID {
	if v < 0 {
		return types.InvalidVersion
	}
	return types.VersionID(v)
}

// parseVersion resolves a path element that is either a numeric version id
// or a branch name.
func (s *Server) parseVersion(el string) (types.VersionID, error) {
	if n, err := strconv.ParseUint(el, 10, 32); err == nil {
		return types.VersionID(n), nil
	}
	return s.store.Tip(el)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	v, err := s.parseVersion(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	s.streamRecords(w, r, s.store.GetVersion(r.Context(), v))
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	v, err := s.parseVersion(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	rec, st, err := s.store.GetRecord(r.Context(), types.Key(r.PathValue("key")), v)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	s.writeJSON(w, QueryResponse{Stats: statsJSON(st), Records: []RecordJSON{toJSON(rec)}})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	v, err := s.parseVersion(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	q := r.URL.Query()
	// An ABSENT hi means "to the top of the keyspace" — an explicit
	// unbounded range, not a sentinel key that large keys could sort
	// past. A present-but-empty hi stays a bound, matching the library:
	// [lo, "") selects nothing.
	kr := core.KeyRangeFrom(types.Key(q.Get("lo")))
	if q.Has("hi") {
		kr = core.KeyRange(kr.Lo, types.Key(q.Get("hi")))
	}
	s.streamRecords(w, r, s.store.GetRange(r.Context(), kr, v))
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	s.streamRecords(w, r, s.store.GetHistory(r.Context(), types.Key(r.PathValue("key"))))
}

// streamWriteTimeout bounds how long one NDJSON line may stall on a slow
// reader. The cursor holds the store's read lock while streaming, so a
// peer that accepts the response one byte a minute would otherwise pin
// the lock (blocking commits, and behind them every new query)
// indefinitely. Refreshed per line: a progressing stream may legitimately
// run long, a stalled one may not.
const streamWriteTimeout = 60 * time.Second

// streamRecords drives a query cursor onto the wire as NDJSON. An error
// before the first record still maps to a plain HTTP error status; once
// records are flowing the status line is long gone, so a failure becomes a
// terminating error line.
func (s *Server) streamRecords(w http.ResponseWriter, r *http.Request, cur *core.Cursor) {
	next, stop := iter.Pull2(cur.Records())
	defer stop()

	rec, err, ok := next()
	if ok && err != nil {
		httpError(w, statusOf(err), err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	// The per-line deadline below lands on the CONNECTION, which outlives
	// this response: without a WriteTimeout configured, net/http never
	// resets it between keep-alive requests, so a stale deadline would
	// poison the next request on the same connection. Clear it on every
	// exit path.
	defer rc.SetWriteDeadline(time.Time{})
	emit := func(line StreamLine) bool {
		if err := rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			s.logf("rstore server: streaming write deadline: %v", err)
		}
		if err := enc.Encode(line); err != nil {
			// The client is gone, stalled past the write deadline, or the
			// connection broke; the cursor's context normally cancels
			// alongside, this just stops sooner.
			s.logf("rstore server: streaming response: %v", err)
			return false
		}
		if flusher != nil {
			// Flush per record: the first results must reach the client
			// while later chunks are still being fetched.
			flusher.Flush()
		}
		return true
	}
	for ok {
		if err != nil {
			emit(StreamLine{Error: err.Error()})
			return
		}
		rj := toJSON(rec)
		if !emit(StreamLine{Record: &rj}) {
			return
		}
		rec, err, ok = next()
	}
	st := statsJSON(cur.Stats())
	emit(StreamLine{Stats: &st})
}

// DiffJSON is the wire form of a version diff.
type DiffJSON struct {
	Added    []CompositeKeyJSON `json:"added"`
	Removed  []CompositeKeyJSON `json:"removed"`
	Modified []string           `json:"modified"`
}

// CompositeKeyJSON is a ⟨key, origin⟩ pair on the wire.
type CompositeKeyJSON struct {
	Key           string `json:"key"`
	OriginVersion uint32 `json:"origin_version"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	a, err := s.parseVersion(r.URL.Query().Get("a"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	b, err := s.parseVersion(r.URL.Query().Get("b"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	d, err := s.store.Diff(a, b)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	out := DiffJSON{Modified: make([]string, 0, len(d.Modified))}
	for _, ck := range d.Added {
		out.Added = append(out.Added, CompositeKeyJSON{Key: string(ck.Key), OriginVersion: uint32(ck.Version)})
	}
	for _, ck := range d.Removed {
		out.Removed = append(out.Removed, CompositeKeyJSON{Key: string(ck.Key), OriginVersion: uint32(ck.Version)})
	}
	for _, k := range d.Modified {
		out.Modified = append(out.Modified, string(k))
	}
	s.writeJSON(w, out)
}

func (s *Server) handleBranches(w http.ResponseWriter, r *http.Request) {
	out := BranchesResponse{Branches: map[string]int64{}}
	for _, b := range s.store.Branches() {
		tip, err := s.store.Tip(b)
		if err != nil {
			// Surface instead of silently skipping: the caller sees which
			// branch failed, and the log records it server-side.
			if out.Errors == nil {
				out.Errors = map[string]string{}
			}
			out.Errors[b] = err.Error()
			s.logf("rstore server: branch %q tip: %v", b, err)
			continue
		}
		if tip == types.InvalidVersion {
			out.Branches[b] = -1
		} else {
			out.Branches[b] = int64(tip)
		}
	}
	s.writeJSON(w, out)
}

func (s *Server) handleSetBranch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Version int64 `json:"version"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.SetBranch(context.WithoutCancel(r.Context()), r.PathValue("name"), versionFromWire(req.Version)); err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Flush(context.WithoutCancel(r.Context())); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	kv := s.store.KV().Stats(r.Context())
	s.writeJSON(w, map[string]any{
		"versions":     s.store.NumVersions(),
		"chunks":       s.store.NumChunks(),
		"pending":      s.store.PendingVersions(),
		"total_span":   s.store.TotalVersionSpan(),
		"bytes_stored": kv.BytesStored,
		"requests":     kv.Requests,
		// Replication repair traffic (zero at replication factor 1).
		"repair_writes":   kv.RepairWrites,
		"hints_pending":   kv.HintsPending,
		"hints_replayed":  kv.HintsReplayed,
		"tombstones_gced": kv.TombstonesGCed,
		// Anti-entropy sync traffic (zero unless the background loop is
		// enabled via -anti-entropy-interval).
		"ae_syncs":         kv.AESyncs,
		"ae_ranges_diffed": kv.AERangesDiffed,
		"ae_keys_repaired": kv.AEKeysRepaired,
		"ae_bytes_hashed":  kv.AEBytesHashed,
		// Storage reclaim (zero on engines without compaction).
		"disk_bytes":      kv.DiskBytes,
		"live_ratio":      kv.LiveRatio,
		"compacted_bytes": kv.CompactedBytes,
		// Failure detector (zero on non-remote clusters).
		"breaker_open":       kv.BreakerOpen,
		"breaker_trips":      kv.BreakerTrips,
		"breaker_probes":     kv.BreakerProbes,
		"breaker_fast_fails": kv.BreakerFastFails,
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; the failure cannot reach the client, so it
		// must at least reach the operator.
		s.logf("rstore server: encode response: %v", err)
	}
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, types.ErrNotFound), errors.Is(err, types.ErrVersionUnknown):
		return http.StatusNotFound
	case errors.Is(err, types.ErrReadOnly):
		return http.StatusForbidden
	case errors.Is(err, types.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
