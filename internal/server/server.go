// Package server implements the HTTP application-server interface of paper
// §2.4: a JSON API exposing commit, version/record/range/history retrieval,
// and branch management over one RStore instance. Multiple servers can front
// the same backing cluster in read-only mode (the paper notes multi-writer
// coordination is not supported).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rstore/internal/core"
	"rstore/internal/types"
)

// Server is the HTTP handler set.
type Server struct {
	store *core.Store
	mux   *http.ServeMux
}

// New builds a server over a store.
func New(store *core.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /commit", s.handleCommit)
	s.mux.HandleFunc("GET /version/{id}", s.handleVersion)
	s.mux.HandleFunc("GET /version/{id}/record/{key}", s.handleRecord)
	s.mux.HandleFunc("GET /version/{id}/range", s.handleRange)
	s.mux.HandleFunc("GET /history/{key}", s.handleHistory)
	s.mux.HandleFunc("GET /diff", s.handleDiff)
	s.mux.HandleFunc("GET /branches", s.handleBranches)
	s.mux.HandleFunc("PUT /branch/{name}", s.handleSetBranch)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// wire types

// RecordJSON is a record on the wire; values are base64 (documents may be
// binary).
type RecordJSON struct {
	Key           string `json:"key"`
	OriginVersion uint32 `json:"origin_version"`
	Value         []byte `json:"value"`
}

func toJSON(r types.Record) RecordJSON {
	return RecordJSON{Key: string(r.CK.Key), OriginVersion: uint32(r.CK.Version), Value: r.Value}
}

// CommitRequest is the commit payload. Parent -1 creates the root.
type CommitRequest struct {
	Parent  int64             `json:"parent"`
	Parents []int64           `json:"parents,omitempty"` // merge commits
	Puts    map[string][]byte `json:"puts,omitempty"`
	Deletes []string          `json:"deletes,omitempty"`
	Branch  string            `json:"branch,omitempty"` // advance this branch on success
}

// CommitResponse returns the generated version id.
type CommitResponse struct {
	Version uint32 `json:"version"`
}

// QueryResponse wraps records plus retrieval statistics.
type QueryResponse struct {
	Records []RecordJSON `json:"records"`
	Stats   StatsJSON    `json:"stats"`
}

// StatsJSON mirrors core.QueryStats.
type StatsJSON struct {
	Span         int     `json:"span"`
	Requests     int     `json:"requests"`
	BytesRead    int64   `json:"bytes_read"`
	SimElapsedMS float64 `json:"sim_elapsed_ms"`
	Records      int     `json:"records"`
	WastedChunks int     `json:"wasted_chunks"`
}

func statsJSON(st core.QueryStats) StatsJSON {
	return StatsJSON{
		Span: st.Span, Requests: st.Requests, BytesRead: st.BytesRead,
		SimElapsedMS: float64(st.SimElapsed.Microseconds()) / 1000,
		Records:      st.Records, WastedChunks: st.WastedChunks,
	}
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad commit body: %w", err))
		return
	}
	ch := core.Change{Puts: map[types.Key][]byte{}}
	for k, v := range req.Puts {
		ch.Puts[types.Key(k)] = v
	}
	for _, k := range req.Deletes {
		ch.Deletes = append(ch.Deletes, types.Key(k))
	}
	parents := []types.VersionID{versionFromWire(req.Parent)}
	for _, p := range req.Parents {
		parents = append(parents, versionFromWire(p))
	}
	v, err := s.store.CommitMerge(parents, ch)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	if req.Branch != "" {
		if err := s.store.SetBranch(req.Branch, v); err != nil {
			httpError(w, statusOf(err), err)
			return
		}
	}
	writeJSON(w, CommitResponse{Version: uint32(v)})
}

func versionFromWire(v int64) types.VersionID {
	if v < 0 {
		return types.InvalidVersion
	}
	return types.VersionID(v)
}

// parseVersion resolves a path element that is either a numeric version id
// or a branch name.
func (s *Server) parseVersion(el string) (types.VersionID, error) {
	if n, err := strconv.ParseUint(el, 10, 32); err == nil {
		return types.VersionID(n), nil
	}
	return s.store.Tip(el)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	v, err := s.parseVersion(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	recs, st, err := s.store.GetVersion(v)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeRecords(w, recs, st)
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	v, err := s.parseVersion(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	rec, st, err := s.store.GetRecord(types.Key(r.PathValue("key")), v)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeRecords(w, []types.Record{rec}, st)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	v, err := s.parseVersion(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	lo := types.Key(r.URL.Query().Get("lo"))
	hi := types.Key(r.URL.Query().Get("hi"))
	if hi == "" {
		hi = types.Key([]byte{0xff, 0xff, 0xff, 0xff})
	}
	recs, st, err := s.store.GetRange(lo, hi, v)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeRecords(w, recs, st)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	recs, st, err := s.store.GetHistory(types.Key(r.PathValue("key")))
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	writeRecords(w, recs, st)
}

// DiffJSON is the wire form of a version diff.
type DiffJSON struct {
	Added    []CompositeKeyJSON `json:"added"`
	Removed  []CompositeKeyJSON `json:"removed"`
	Modified []string           `json:"modified"`
}

// CompositeKeyJSON is a ⟨key, origin⟩ pair on the wire.
type CompositeKeyJSON struct {
	Key           string `json:"key"`
	OriginVersion uint32 `json:"origin_version"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	a, err := s.parseVersion(r.URL.Query().Get("a"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	b, err := s.parseVersion(r.URL.Query().Get("b"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	d, err := s.store.Diff(a, b)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	out := DiffJSON{Modified: make([]string, 0, len(d.Modified))}
	for _, ck := range d.Added {
		out.Added = append(out.Added, CompositeKeyJSON{Key: string(ck.Key), OriginVersion: uint32(ck.Version)})
	}
	for _, ck := range d.Removed {
		out.Removed = append(out.Removed, CompositeKeyJSON{Key: string(ck.Key), OriginVersion: uint32(ck.Version)})
	}
	for _, k := range d.Modified {
		out.Modified = append(out.Modified, string(k))
	}
	writeJSON(w, out)
}

func (s *Server) handleBranches(w http.ResponseWriter, r *http.Request) {
	out := map[string]int64{}
	for _, b := range s.store.Branches() {
		tip, err := s.store.Tip(b)
		if err != nil {
			continue
		}
		if tip == types.InvalidVersion {
			out[b] = -1
		} else {
			out[b] = int64(tip)
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleSetBranch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Version int64 `json:"version"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.SetBranch(r.PathValue("name"), versionFromWire(req.Version)); err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Flush(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	kv := s.store.KV().Stats()
	writeJSON(w, map[string]any{
		"versions":     s.store.NumVersions(),
		"chunks":       s.store.NumChunks(),
		"pending":      s.store.PendingVersions(),
		"total_span":   s.store.TotalVersionSpan(),
		"bytes_stored": kv.BytesStored,
		"requests":     kv.Requests,
	})
}

func writeRecords(w http.ResponseWriter, recs []types.Record, st core.QueryStats) {
	out := QueryResponse{Stats: statsJSON(st), Records: make([]RecordJSON, len(recs))}
	for i, r := range recs {
		out.Records[i] = toJSON(r)
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, types.ErrNotFound), errors.Is(err, types.ErrVersionUnknown):
		return http.StatusNotFound
	case errors.Is(err, types.ErrReadOnly):
		return http.StatusForbidden
	case errors.Is(err, types.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
