// Package corpus maintains the id-space view of a versioned dataset that the
// partitioning algorithms and the query engine operate on: every distinct
// record (composite key) receives a dense uint32 id, and every version's
// tree-edge delta is kept as sorted id sets. This is the in-memory
// counterpart of the paper's record/version bookkeeping: version membership
// is never materialized per version (that would be the full 3-D matrix of
// Fig 3); it is derived from deltas on demand.
package corpus

import (
	"fmt"

	"rstore/internal/bitset"
	"rstore/internal/intset"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// Corpus is the registry of records and per-version deltas for one dataset.
// It is not safe for concurrent mutation; readers may share it after loading.
type Corpus struct {
	graph *vgraph.Graph

	recs []types.Record // by record id
	byCK map[types.CompositeKey]uint32

	adds [][]uint32 // by version: record ids added on the tree edge (sorted)
	dels [][]uint32 // by version: record ids removed on the tree edge (sorted)

	keyIDs  map[types.Key]uint32 // key → dense key id
	keyList []types.Key          // key id → key
	keyRecs [][]uint32           // key id → record ids in registration order
}

// New returns an empty corpus over the given graph. Versions must be
// registered with AddVersionDelta in id order as they are added to the graph.
func New(g *vgraph.Graph) *Corpus {
	return &Corpus{
		graph:  g,
		byCK:   make(map[types.CompositeKey]uint32),
		keyIDs: make(map[types.Key]uint32),
	}
}

// Graph returns the underlying version graph.
func (c *Corpus) Graph() *vgraph.Graph { return c.graph }

// NumRecords returns the number of distinct records registered.
func (c *Corpus) NumRecords() int { return len(c.recs) }

// NumVersions returns the number of versions registered.
func (c *Corpus) NumVersions() int { return len(c.adds) }

// NumKeys returns the number of distinct primary keys seen.
func (c *Corpus) NumKeys() int { return len(c.keyList) }

// Record returns the record with the given id.
func (c *Corpus) Record(id uint32) types.Record { return c.recs[id] }

// IDForCK resolves a composite key to its record id.
func (c *Corpus) IDForCK(ck types.CompositeKey) (uint32, bool) {
	id, ok := c.byCK[ck]
	return id, ok
}

// KeyOf returns the dense key id of record id.
func (c *Corpus) KeyOf(id uint32) uint32 { return c.keyIDs[c.recs[id].CK.Key] }

// Key returns the primary key with dense id k.
func (c *Corpus) Key(k uint32) types.Key { return c.keyList[k] }

// KeyRecords returns the record ids carrying the given primary key, in
// registration (commit) order. The slice is shared; callers must not mutate.
func (c *Corpus) KeyRecords(key types.Key) []uint32 {
	ki, ok := c.keyIDs[key]
	if !ok {
		return nil
	}
	return c.keyRecs[ki]
}

// Keys returns all primary keys in dense-id order. The slice is shared.
func (c *Corpus) Keys() []types.Key { return c.keyList }

// Adds returns the sorted record ids added at version v relative to its tree
// parent (for the root: all initial records). Shared slice.
func (c *Corpus) Adds(v types.VersionID) intset.Set { return c.adds[v] }

// Dels returns the sorted record ids removed at version v relative to its
// tree parent. Shared slice.
func (c *Corpus) Dels(v types.VersionID) intset.Set { return c.dels[v] }

// AddVersionDelta registers version v's delta. v must equal NumVersions()
// (versions register densely, in commit order) and must already exist in the
// graph. Added records receive fresh ids unless their composite key is
// already registered (which happens for records arriving through merge
// edges: the tree delta re-adds an existing record). Deleted composite keys
// must be registered.
func (c *Corpus) AddVersionDelta(v types.VersionID, delta *types.Delta) error {
	if int(v) != len(c.adds) {
		return fmt.Errorf("corpus: version %d registered out of order (have %d)", v, len(c.adds))
	}
	if !c.graph.Valid(v) {
		return &types.VersionUnknownError{Version: v}
	}
	if !delta.IsConsistent() {
		return fmt.Errorf("%w: version %d", types.ErrInconsistentDelta, v)
	}
	addIDs := make([]uint32, 0, len(delta.Adds))
	for _, r := range delta.Adds {
		id, ok := c.byCK[r.CK]
		if !ok {
			id = uint32(len(c.recs))
			c.recs = append(c.recs, r)
			c.byCK[r.CK] = id
			ki, ok := c.keyIDs[r.CK.Key]
			if !ok {
				ki = uint32(len(c.keyList))
				c.keyIDs[r.CK.Key] = ki
				c.keyList = append(c.keyList, r.CK.Key)
				c.keyRecs = append(c.keyRecs, nil)
			}
			c.keyRecs[ki] = append(c.keyRecs[ki], id)
		}
		addIDs = append(addIDs, id)
	}
	delIDs := make([]uint32, 0, len(delta.Dels))
	for _, ck := range delta.Dels {
		id, ok := c.byCK[ck]
		if !ok {
			return fmt.Errorf("%w: delete of unknown record %v in version %d", types.ErrNotFound, ck, v)
		}
		delIDs = append(delIDs, id)
	}
	c.adds = append(c.adds, intset.FromUnsorted(addIDs))
	c.dels = append(c.dels, intset.FromUnsorted(delIDs))
	return nil
}

// Members materializes the record-id set of version v by walking the tree
// path from the root and applying deltas. Cost is proportional to the total
// delta volume on the path.
func (c *Corpus) Members(v types.VersionID) (intset.Set, error) {
	if !c.graph.Valid(v) || int(v) >= len(c.adds) {
		return nil, &types.VersionUnknownError{Version: v}
	}
	var cur intset.Set
	for _, u := range c.graph.PathFromRoot(v) {
		cur = intset.Union(intset.Diff(cur, c.dels[u]), c.adds[u])
	}
	return cur, nil
}

// ForEachVersion walks the version tree in pre-order, presenting each
// version's full membership bitmap to fn. The bitmap is mutated in place
// across calls (delta apply on descent, undo on backtrack), so fn must not
// retain it. Total cost is proportional to the total delta volume in the
// tree — this is the single pass used to build chunk maps (paper §3.1).
// fn returning false stops the walk.
func (c *Corpus) ForEachVersion(fn func(v types.VersionID, members *bitset.BitSet) bool) {
	if c.graph.NumVersions() == 0 {
		return
	}
	members := bitset.New(len(c.recs))
	stopped := false
	var walk func(v types.VersionID)
	walk = func(v types.VersionID) {
		if stopped {
			return
		}
		for _, id := range c.dels[v] {
			members.Clear(id)
		}
		for _, id := range c.adds[v] {
			members.Set(id)
		}
		if !fn(v, members) {
			stopped = true
		}
		if !stopped {
			for _, ch := range c.graph.Children(v) {
				if int(ch) < len(c.adds) {
					walk(ch)
				}
			}
		}
		// Undo on backtrack. Order matters: a record both deleted and
		// re-added cannot occur within one consistent delta, so the two
		// loops commute; still, mirror the apply order reversed.
		for _, id := range c.adds[v] {
			members.Clear(id)
		}
		for _, id := range c.dels[v] {
			members.Set(id)
		}
	}
	walk(0)
}

// VersionBytes returns the total payload volume of version v.
func (c *Corpus) VersionBytes(v types.VersionID) (int64, error) {
	members, err := c.Members(v)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, id := range members {
		total += int64(c.recs[id].Size())
	}
	return total, nil
}

// TotalBytes returns the total payload volume across all distinct records —
// the "size of unique records" statistic of Table 2.
func (c *Corpus) TotalBytes() int64 {
	var total int64
	for _, r := range c.recs {
		total += int64(r.Size())
	}
	return total
}

// Validate cross-checks structural invariants: every delete targets a record
// present in the parent version and every add is absent from it. Cost is
// proportional to total delta volume (uses ForEachVersion); intended for
// tests and loaders.
func (c *Corpus) Validate() error {
	if err := c.graph.Validate(); err != nil {
		return err
	}
	if c.graph.NumVersions() != len(c.adds) {
		return fmt.Errorf("corpus: %d versions in graph, %d deltas", c.graph.NumVersions(), len(c.adds))
	}
	var firstErr error
	members := bitset.New(len(c.recs))
	var walk func(v types.VersionID) bool
	walk = func(v types.VersionID) bool {
		for _, id := range c.dels[v] {
			if !members.Contains(id) {
				firstErr = fmt.Errorf("corpus: version %d deletes %v not present in parent", v, c.recs[id].CK)
				return false
			}
			members.Clear(id)
		}
		for _, id := range c.adds[v] {
			if members.Contains(id) {
				firstErr = fmt.Errorf("corpus: version %d adds %v already present", v, c.recs[id].CK)
				return false
			}
			members.Set(id)
		}
		for _, ch := range c.graph.Children(v) {
			if !walk(ch) {
				return false
			}
		}
		for _, id := range c.adds[v] {
			members.Clear(id)
		}
		for _, id := range c.dels[v] {
			members.Set(id)
		}
		return true
	}
	walk(0)
	return firstErr
}
