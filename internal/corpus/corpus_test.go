package corpus

import (
	"errors"
	"testing"

	"rstore/internal/bitset"
	"rstore/internal/intset"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

func rec(k string, v types.VersionID) types.Record {
	return types.Record{CK: types.CompositeKey{Key: types.Key(k), Version: v}, Value: []byte(k)}
}

func ck(k string, v types.VersionID) types.CompositeKey {
	return types.CompositeKey{Key: types.Key(k), Version: v}
}

// buildExample2 reproduces the paper's Example 2 (Fig 1): five versions,
// nine distinct records.
//
//	V0 root {K0..K3}; V1 = mod K3, add K4; V2 (from V0) = mod K3, add K5,
//	del K2; V3 (from V1) = del K2; V4 (from V2) = mod K3.
func buildExample2(t *testing.T) *Corpus {
	t.Helper()
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v0)
	v3, _ := g.AddVersion(v1)
	v4, _ := g.AddVersion(v2)

	c := New(g)
	deltas := []*types.Delta{
		{Adds: []types.Record{rec("K0", 0), rec("K1", 0), rec("K2", 0), rec("K3", 0)}},
		{Adds: []types.Record{rec("K3", 1), rec("K4", 1)}, Dels: []types.CompositeKey{ck("K3", 0)}},
		{Adds: []types.Record{rec("K3", 2), rec("K5", 2)}, Dels: []types.CompositeKey{ck("K3", 0), ck("K2", 0)}},
		{Dels: []types.CompositeKey{ck("K2", 0)}},
		{Adds: []types.Record{rec("K3", 4)}, Dels: []types.CompositeKey{ck("K3", 2)}},
	}
	for v, d := range deltas {
		if err := c.AddVersionDelta(types.VersionID(v), d); err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
	}
	_ = v3
	_ = v4
	return c
}

func TestExample2Membership(t *testing.T) {
	c := buildExample2(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumRecords() != 9 {
		t.Fatalf("distinct records = %d, want 9 (paper)", c.NumRecords())
	}
	// Paper: V1 = {⟨K0,V0⟩,⟨K1,V0⟩,⟨K2,V0⟩,⟨K3,V1⟩,⟨K4,V1⟩}.
	want := map[types.VersionID][]types.CompositeKey{
		0: {ck("K0", 0), ck("K1", 0), ck("K2", 0), ck("K3", 0)},
		1: {ck("K0", 0), ck("K1", 0), ck("K2", 0), ck("K3", 1), ck("K4", 1)},
		2: {ck("K0", 0), ck("K1", 0), ck("K3", 2), ck("K5", 2)},
		3: {ck("K0", 0), ck("K1", 0), ck("K3", 1), ck("K4", 1)},
		4: {ck("K0", 0), ck("K1", 0), ck("K3", 4), ck("K5", 2)},
	}
	for v, cks := range want {
		members, err := c.Members(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(members) != len(cks) {
			t.Fatalf("V%d: %d members, want %d", v, len(members), len(cks))
		}
		have := map[types.CompositeKey]bool{}
		for _, id := range members {
			have[c.Record(id).CK] = true
		}
		for _, k := range cks {
			if !have[k] {
				t.Fatalf("V%d missing %v", v, k)
			}
		}
	}
}

func TestKeyRecords(t *testing.T) {
	c := buildExample2(t)
	k3 := c.KeyRecords("K3")
	if len(k3) != 4 {
		t.Fatalf("K3 has %d records, want 4", len(k3))
	}
	// Registration order: origins 0, 1, 2, 4.
	wantOrigins := []types.VersionID{0, 1, 2, 4}
	for i, id := range k3 {
		if c.Record(id).CK.Version != wantOrigins[i] {
			t.Fatalf("K3 record %d origin %d, want %d", i, c.Record(id).CK.Version, wantOrigins[i])
		}
	}
	if c.KeyRecords("missing") != nil {
		t.Fatal("unknown key returned records")
	}
	if c.NumKeys() != 6 {
		t.Fatalf("NumKeys = %d", c.NumKeys())
	}
}

func TestForEachVersionMatchesMembers(t *testing.T) {
	c := buildExample2(t)
	visited := 0
	c.ForEachVersion(func(v types.VersionID, members *bitset.BitSet) bool {
		visited++
		want, err := c.Members(v)
		if err != nil {
			t.Fatal(err)
		}
		got := intset.Set(members.Slice())
		if !intset.Equal(got, want) {
			t.Fatalf("V%d: walk %v vs materialized %v", v, got, want)
		}
		return true
	})
	if visited != 5 {
		t.Fatalf("visited %d versions", visited)
	}
	// Early stop.
	visited = 0
	c.ForEachVersion(func(types.VersionID, *bitset.BitSet) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Fatalf("early stop visited %d", visited)
	}
}

func TestAddVersionDeltaErrors(t *testing.T) {
	g := vgraph.New()
	g.AddRoot()
	c := New(g)
	// Out-of-order registration.
	if err := c.AddVersionDelta(1, &types.Delta{}); err == nil {
		t.Error("out-of-order registration accepted")
	}
	// Delete of unknown record.
	err := c.AddVersionDelta(0, &types.Delta{Dels: []types.CompositeKey{ck("x", 0)}})
	if !errors.Is(err, types.ErrNotFound) {
		t.Errorf("unknown delete: %v", err)
	}
	// Inconsistent delta (add and delete same CK).
	g2 := vgraph.New()
	g2.AddRoot()
	c2 := New(g2)
	err = c2.AddVersionDelta(0, &types.Delta{
		Adds: []types.Record{rec("a", 0)},
		Dels: []types.CompositeKey{ck("a", 0)},
	})
	if !errors.Is(err, types.ErrInconsistentDelta) {
		t.Errorf("inconsistent delta: %v", err)
	}
}

func TestMergeReAdd(t *testing.T) {
	// A record created on one branch re-added (via merge) on another must
	// reuse its id and appear in both branches' membership.
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)     // branch A: adds Kx
	v2, _ := g.AddVersion(v0)     // branch B
	v3, _ := g.AddVersion(v2, v1) // merge into B, re-adds ⟨Kx,V1⟩

	c := New(g)
	must := func(v types.VersionID, d *types.Delta) {
		t.Helper()
		if err := c.AddVersionDelta(v, d); err != nil {
			t.Fatal(err)
		}
	}
	must(v0, &types.Delta{Adds: []types.Record{rec("base", 0)}})
	must(v1, &types.Delta{Adds: []types.Record{rec("Kx", 1)}})
	must(v2, &types.Delta{})
	must(v3, &types.Delta{Adds: []types.Record{rec("Kx", 1)}}) // tree-edge re-add

	if c.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d, want 2 (re-add must not duplicate)", c.NumRecords())
	}
	m3, _ := c.Members(v3)
	if len(m3) != 2 {
		t.Fatalf("merge version has %d members", len(m3))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionBytes(t *testing.T) {
	c := buildExample2(t)
	b0, err := c.VersionBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 records of 2-byte payloads + overhead.
	want := int64(4 * (2 + types.RecordOverhead))
	if b0 != want {
		t.Fatalf("VersionBytes(0) = %d, want %d", b0, want)
	}
	if c.TotalBytes() <= b0 {
		t.Fatal("TotalBytes must cover all distinct records")
	}
}
