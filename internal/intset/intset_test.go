package intset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromUnsorted(t *testing.T) {
	s := FromUnsorted([]uint32{5, 1, 5, 3, 1})
	if !Equal(s, Set{1, 3, 5}) {
		t.Fatalf("FromUnsorted = %v", s)
	}
	if FromUnsorted(nil) != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestContains(t *testing.T) {
	s := Set{2, 4, 8}
	for _, v := range []uint32{2, 4, 8} {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []uint32{0, 3, 9} {
		if s.Contains(v) {
			t.Fatalf("spurious %d", v)
		}
	}
}

// model computes expected results with maps.
func model(a, b Set, op string) Set {
	inA := map[uint32]bool{}
	for _, v := range a {
		inA[v] = true
	}
	inB := map[uint32]bool{}
	for _, v := range b {
		inB[v] = true
	}
	var out []uint32
	switch op {
	case "intersect":
		for v := range inA {
			if inB[v] {
				out = append(out, v)
			}
		}
	case "diff":
		for v := range inA {
			if !inB[v] {
				out = append(out, v)
			}
		}
	case "union":
		for v := range inA {
			out = append(out, v)
		}
		for v := range inB {
			if !inA[v] {
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := randSet(rng, 40, 100)
		b := randSet(rng, 40, 100)
		if got, want := Intersect(a, b), model(a, b, "intersect"); !Equal(got, want) {
			t.Fatalf("Intersect(%v,%v) = %v, want %v", a, b, got, want)
		}
		if got, want := Diff(a, b), model(a, b, "diff"); !Equal(got, want) {
			t.Fatalf("Diff(%v,%v) = %v, want %v", a, b, got, want)
		}
		if got, want := Union(a, b), model(a, b, "union"); !Equal(got, want) {
			t.Fatalf("Union(%v,%v) = %v, want %v", a, b, got, want)
		}
		in, notIn := SplitBy(a, b)
		if !Equal(in, model(a, b, "intersect")) || !Equal(notIn, model(a, b, "diff")) {
			t.Fatalf("SplitBy(%v,%v) = %v / %v", a, b, in, notIn)
		}
	}
}

// TestIntersectLopsided exercises the binary-search path (|b| >> |a|).
func TestIntersectLopsided(t *testing.T) {
	big := make(Set, 1000)
	for i := range big {
		big[i] = uint32(i * 2)
	}
	small := Set{0, 3, 500, 1998}
	got := Intersect(small, big)
	if !Equal(got, Set{0, 500, 1998}) {
		t.Fatalf("lopsided intersect = %v", got)
	}
	// Symmetric argument order must agree.
	if !Equal(Intersect(big, small), got) {
		t.Fatal("intersect not symmetric")
	}
}

func TestEdgeCases(t *testing.T) {
	a := Set{1, 2}
	if Intersect(a, nil) != nil || Intersect(nil, a) != nil {
		t.Fatal("intersect with empty")
	}
	if !Equal(Diff(a, nil), a) {
		t.Fatal("diff with empty")
	}
	if Diff(nil, a) != nil {
		t.Fatal("diff of empty")
	}
	if !Equal(Union(a, nil), a) || !Equal(Union(nil, a), a) {
		t.Fatal("union with empty")
	}
	// Clone independence.
	c := a.Clone()
	c[0] = 99
	if a[0] == 99 {
		t.Fatal("clone aliases source")
	}
}

// TestAlgebraicProperties property-checks set identities.
func TestAlgebraicProperties(t *testing.T) {
	gen := func(raw []uint32) Set {
		for i := range raw {
			raw[i] %= 200
		}
		return FromUnsorted(raw)
	}
	f := func(ra, rb []uint32) bool {
		a, b := gen(ra), gen(rb)
		// |A| = |A∩B| + |A\B|
		if len(a) != len(Intersect(a, b))+len(Diff(a, b)) {
			return false
		}
		// A∪B = (A\B) ∪ (B\A) ∪ (A∩B)
		u := Union(a, b)
		parts := Union(Union(Diff(a, b), Diff(b, a)), Intersect(a, b))
		return Equal(u, parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randSet(rng *rand.Rand, maxLen, universe int) Set {
	n := rng.Intn(maxLen)
	raw := make([]uint32, n)
	for i := range raw {
		raw[i] = uint32(rng.Intn(universe))
	}
	return FromUnsorted(raw)
}
