// Package intset implements set algebra over sorted []uint32 slices. The
// Bottom-Up partitioner (paper §3.2) manipulates collections of record-id
// sets (π, ψ) whose sizes are proportional to deltas, making sorted-slice
// sets more memory- and cache-efficient than maps or dense bitmaps.
package intset

import "sort"

// Set is a strictly-increasing sorted slice of uint32 ids. The zero value is
// an empty set.
type Set []uint32

// FromUnsorted builds a set from arbitrary input, sorting and deduplicating.
func FromUnsorted(ids []uint32) Set {
	if len(ids) == 0 {
		return nil
	}
	s := make(Set, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports membership via binary search.
func (s Set) Contains(v uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Clone returns an independent copy.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Intersect returns s ∩ other.
func Intersect(a, b Set) Set {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// Walk the shorter set with binary search when sizes are lopsided.
	if len(a) > len(b) {
		a, b = b, a
	}
	var out Set
	if len(b) > 16*len(a) {
		for _, v := range a {
			if b.Contains(v) {
				out = append(out, v)
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns a \ b.
func Diff(a, b Set) Set {
	if len(a) == 0 {
		return nil
	}
	if len(b) == 0 {
		return a.Clone()
	}
	var out Set
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return out
}

// Union returns a ∪ b.
func Union(a, b Set) Set {
	if len(a) == 0 {
		return b.Clone()
	}
	if len(b) == 0 {
		return a.Clone()
	}
	out := make(Set, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SplitBy partitions a into (a ∩ b, a \ b) in a single pass.
func SplitBy(a, b Set) (in, notIn Set) {
	if len(b) == 0 {
		return nil, a.Clone()
	}
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			in = append(in, v)
		} else {
			notIn = append(notIn, v)
		}
	}
	return in, notIn
}

// Equal reports element-wise equality.
func Equal(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
