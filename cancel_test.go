package rstore_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rstore"
	"rstore/internal/engine"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
)

// countingBackend wraps the memory backend and counts chunk-table point
// reads, so a test can observe exactly how much work a storage node did
// for a query.
type countingBackend struct {
	*memory.Backend
	chunkGets *atomic.Int64
}

func (b *countingBackend) Get(ctx context.Context, table, key string) ([]byte, bool, error) {
	if table == "chunks" {
		b.chunkGets.Add(1)
	}
	return b.Backend.Get(ctx, table, key)
}

// TestRemoteClusterCancellationStopsNodeScans is the cancellation
// acceptance test over a real TCP cluster: cancelling a streaming query
// mid-flight aborts the node-side chunk scan — the daemons' operation
// counts settle strictly below the version's chunk span instead of the
// store finishing a retrieval nobody is waiting for.
func TestRemoteClusterCancellationStopsNodeScans(t *testing.T) {
	const nNodes = 3
	var chunkGets atomic.Int64
	addrs := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		srv, err := engined.Start("127.0.0.1:0", &countingBackend{Backend: memory.New(), chunkGets: &chunkGets})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr().String()
	}
	kv, err := rstore.OpenCluster(context.Background(), rstore.ClusterConfig{
		Engine: rstore.EngineRemote, NodeAddrs: addrs,
		Remote: remote.Options{Attempts: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// One chunk per fetch round, no cache: every chunk consult is a real
	// node read the counter sees.
	st, err := rstore.Open(context.Background(), rstore.Config{KV: kv, ChunkCapacity: 256, QueryFetchBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx := context.Background()
	puts := map[rstore.Key][]byte{}
	for i := 0; i < 16; i++ {
		puts[rstore.Key(fmt.Sprintf("doc-%02d", i))] = []byte(strings.Repeat("x", 200))
	}
	v, err := st.Commit(ctx, rstore.NoParent, rstore.Change{Puts: puts})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	total := int64(st.NumChunks())
	if total < 4 {
		t.Fatalf("need a multi-chunk version, got %d chunks", total)
	}

	chunkGets.Store(0)
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var sawErr error
	n := 0
	for _, err := range st.GetVersion(qctx, v).Records() {
		if err != nil {
			sawErr = err
			break
		}
		if n++; n == 1 {
			cancel() // first record in hand: the rest is unwanted
		}
	}
	if sawErr == nil {
		t.Fatal("cancelled cursor drained cleanly")
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("cursor error does not carry context.Canceled: %v", sawErr)
	}

	// The node-side reads must stop: the count settles (no background
	// fetching continues) strictly below the version's chunk span.
	var settled int64
	deadline := time.Now().Add(5 * time.Second)
	for {
		c := chunkGets.Load()
		time.Sleep(50 * time.Millisecond)
		if chunkGets.Load() == c {
			settled = c
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node-side chunk reads never settled")
		}
	}
	if settled == 0 || settled >= total {
		t.Fatalf("node-side chunk reads = %d of %d total chunks (want 0 < reads < total)", settled, total)
	}

	// The store remains fully usable on a fresh context.
	recs, _, err := st.GetVersionAll(ctx, v)
	if err != nil || len(recs) != 16 {
		t.Fatalf("store unusable after cancelled query: %d records, %v", len(recs), err)
	}
}

// engine.Backend conformance of the wrapper (compile-time).
var _ engine.Backend = (*countingBackend)(nil)
