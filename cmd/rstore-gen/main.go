// Command rstore-gen generates and describes the synthetic datasets of the
// paper's Table 2.
//
// Usage:
//
//	rstore-gen -list                      # catalog with paper parameters
//	rstore-gen -dataset C0 -vfrac 0.05    # generate scaled C0, print stats
//	rstore-gen -all -vfrac 0.02           # all datasets at a scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rstore/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the Table 2 catalog")
		dataset = flag.String("dataset", "", "dataset name to generate")
		all     = flag.Bool("all", false, "generate every dataset")
		vfrac   = flag.Float64("vfrac", 0.02, "version-count scale fraction")
		rfrac   = flag.Float64("rfrac", 0.02, "records-per-version scale fraction")
		sfrac   = flag.Float64("sfrac", 0.125, "record-size scale fraction")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-4s %10s %10s %12s %8s %8s %10s\n",
			"name", "#versions", "avg depth", "#recs/ver", "%update", "type", "rec size")
		for _, s := range workload.Catalog() {
			depth := s.AvgDepth
			if depth == 0 {
				depth = float64(s.Versions)
			}
			size := s.RecordSize
			if size == 0 {
				size = 1024
			}
			fmt.Printf("%-4s %10d %10.1f %12d %8.0f %8s %10d\n",
				s.Name, s.Versions, depth, s.RecordsPerVersion, s.UpdatePct*100, s.Update, size)
		}
		return
	}

	var specs []workload.Spec
	switch {
	case *all:
		specs = workload.Catalog()
	case *dataset != "":
		s, err := workload.SpecByName(*dataset)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []workload.Spec{s}
	default:
		fmt.Fprintln(os.Stderr, "rstore-gen: need -list, -dataset <name>, or -all")
		os.Exit(2)
	}

	fmt.Printf("%-4s %10s %10s %12s %14s %12s %10s\n",
		"name", "#versions", "avg depth", "#uniques", "unique bytes", "#keys", "gen time")
	for _, s := range specs {
		s = s.Scaled(*vfrac, *rfrac, *sfrac)
		s.Seed = *seed
		start := time.Now()
		c, err := workload.Generate(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rstore-gen: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		if err := c.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "rstore-gen: %s: validation: %v\n", s.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-4s %10d %10.1f %12d %14d %12d %10s\n",
			s.Name, c.NumVersions(), c.Graph().AvgLeafDepth(),
			c.NumRecords(), c.TotalBytes(), c.NumKeys(),
			time.Since(start).Round(time.Millisecond))
	}
}
