// Command rstore-server runs the HTTP application server (paper §2.4) over
// an in-process cluster, optionally restoring from / persisting to a
// snapshot file on shutdown.
//
// Usage:
//
//	rstore-server -addr :8080 -nodes 4 -rf 2 [-store data.rstore]
//	rstore-server -addr :8080 -backend disklog -data /var/lib/rstore
//	rstore-server -addr :8080 -backend lsm -data /var/lib/rstore
//	rstore-server -addr :8080 -backend disklog -data /var/lib/rstore -compact-interval 10m
//	rstore-server -addr :8080 -rf 2 -backend remote -node-addrs host1:7420,host2:7420,host3:7420
//
// With -compact-interval set (disklog, lsm, or remote backends), the
// server watches the cluster's live ratio (live bytes / disk bytes, on
// /stats) and compacts every node's storage whenever it falls below
// -compact-live-ratio, reclaiming the dead bytes overwritten document
// versions leave behind. A backend with nothing to compact is reported
// once at startup instead of on every tick.
//
// With -backend disklog or -backend lsm every node's data lives under the
// -data directory and survives restarts: the server replays it on boot and
// reopens the store if one was previously committed there. With -backend
// remote the cluster is one rstore-node daemon per -node-addrs entry (the
// address list fixes the node count; -nodes is ignored) and the store is
// likewise reopened from the nodes' contents on boot. The -store snapshot
// file applies to the memory backend only.
//
// API (JSON; the set-returning queries stream NDJSON — one
// {"record":...} line per record as chunks arrive, a {"stats":...}
// trailer, mid-stream failures as a terminating {"error":...} line —
// and honor request cancellation end to end):
//
//	POST /commit                       {"parent":-1,"puts":{"k":"<base64>"},"branch":"main"}
//	GET  /version/{id|branch}          full version retrieval (NDJSON stream)
//	GET  /version/{id}/record/{key}    point retrieval
//	GET  /version/{id}/range?lo=&hi=   partial version retrieval (NDJSON stream;
//	                                   omit hi to read to the top of the keyspace)
//	GET  /history/{key}                record evolution (NDJSON stream)
//	GET  /branches                     branch tips (+ per-branch errors)
//	PUT  /branch/{name}                {"version":3}
//	POST /flush                        force online partitioning
//	GET  /stats                        store statistics
//
// SIGINT/SIGTERM drain in-flight requests via http.Server.Shutdown
// before closing the store.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rstore"
	"rstore/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		nodes     = flag.Int("nodes", 1, "cluster nodes")
		rf        = flag.Int("rf", 1, "replication factor")
		batch     = flag.Int("batch", 16, "online partitioning batch size")
		k         = flag.Int("k", 1, "max sub-chunk size (record compression)")
		chunkKB   = flag.Int("chunk-kb", 1024, "chunk capacity in KiB")
		backend   = flag.String("backend", "memory", "storage backend: memory|disklog|lsm|remote")
		dataDir   = flag.String("data", "rstore-data", "data directory for -backend disklog/lsm")
		nodeAddrs = flag.String("node-addrs", "", "comma-separated rstore-node addresses for -backend remote")
		storePath = flag.String("store", "", "snapshot file to restore from (memory backend only)")
		hintEvery = flag.Duration("hint-interval", 0, "hint drain cadence for replication repair (0 = default 1s)")
		tombTTL   = flag.Duration("tombstone-ttl", 0, "collect tombstones older than this once all replicas agree (0 = ack-based GC only)")
		aeEvery   = flag.Duration("anti-entropy-interval", 0, "background hash-tree replica sync cadence (0 = off; needs -rf > 1)")
		compEvery = flag.Duration("compact-interval", 0, "check the cluster's live ratio and compact at this cadence (0 = off; disklog/remote backends)")
		compRatio = flag.Float64("compact-live-ratio", 0.6, "compact when live bytes / disk bytes falls below this (with -compact-interval)")
	)
	flag.Parse()

	cluster := rstore.ClusterConfig{
		Nodes: *nodes, ReplicationFactor: *rf, Cost: rstore.DefaultCostModel(),
		Engine: *backend, Dir: *dataDir,
		Repair: rstore.RepairOptions{HintInterval: *hintEvery, TombstoneTTL: *tombTTL, AntiEntropyInterval: *aeEvery},
	}
	if *aeEvery > 0 && *rf <= 1 {
		log.Printf("rstore-server: -anti-entropy-interval needs -rf > 1; ignored")
	}
	if *backend == rstore.EngineRemote {
		cluster.NodeAddrs = rstore.SplitNodeAddrs(*nodeAddrs)
		if len(cluster.NodeAddrs) == 0 {
			log.Fatal("-backend remote needs -node-addrs host:port[,host:port...]")
		}
		cluster.Nodes = 0 // the address list is the cluster shape
	}
	ctx := context.Background()
	kv, err := rstore.OpenCluster(ctx, cluster)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rstore.Config{
		KV: kv, BatchSize: *batch, SubChunkK: *k, ChunkCapacity: *chunkKB << 10,
	}

	// Durable backends hold the store in the backend itself (data
	// directory or remote nodes); reopen it if one was committed there.
	durable := *backend == rstore.EngineDisklog || *backend == rstore.EngineLSM || *backend == rstore.EngineRemote
	where := *dataDir
	if *backend == rstore.EngineRemote {
		where = "nodes " + strings.Join(cluster.NodeAddrs, ",")
	}

	var st *rstore.Store
	switch {
	case durable:
		exists, err := rstore.Exists(ctx, kv)
		if err != nil {
			log.Fatalf("probe %s: %v", where, err)
		}
		if exists {
			st, err = rstore.Load(ctx, cfg)
			if err != nil {
				log.Fatalf("load %s: %v", where, err)
			}
			log.Printf("reopened %d versions from %s", st.NumVersions(), where)
		}
	case *storePath != "":
		if f, err := os.Open(*storePath); err == nil {
			if err := kv.Restore(ctx, f); err != nil {
				log.Fatalf("restore %s: %v", *storePath, err)
			}
			f.Close()
			st, err = rstore.Load(ctx, cfg)
			if err != nil {
				log.Fatalf("load: %v", err)
			}
			log.Printf("restored %d versions from %s", st.NumVersions(), *storePath)
		}
	}
	if st == nil {
		st, err = rstore.Open(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if durable {
			// Establish the recovery root immediately: without a manifest,
			// commits acknowledged before the first flush/SetBranch could
			// not be replayed after a crash.
			if err := st.Checkpoint(ctx); err != nil {
				log.Fatalf("checkpoint %s: %v", where, err)
			}
		}
	}

	// Background storage reclaim: overwritten document versions and GC'd
	// tombstones leave dead bytes in disk-backed storage; compact whenever
	// the cluster-wide live ratio sinks below the threshold. Engines without
	// compaction are reported once — at startup for a local memory cluster,
	// on first occurrence for remote daemons — instead of spamming the log
	// on every tick.
	compactCtx, stopCompact := context.WithCancel(ctx)
	var compactDone chan struct{}
	switch {
	case *compEvery > 0 && *backend == rstore.EngineMemory:
		log.Printf("rstore-server: backend memory does not support compaction; -compact-interval ignored")
	case *compEvery > 0:
		compactDone = make(chan struct{})
		go func() {
			defer close(compactDone)
			t := time.NewTicker(*compEvery)
			defer t.Stop()
			loggedNoCompaction := false
			for {
				select {
				case <-compactCtx.Done():
					return
				case <-t.C:
				}
				cs := kv.Stats(compactCtx)
				if cs.DiskBytes == 0 || cs.LiveRatio >= *compRatio {
					continue
				}
				reclaimed, err := kv.Compact(compactCtx)
				switch {
				case errors.Is(err, rstore.ErrNoCompaction):
					if !loggedNoCompaction {
						loggedNoCompaction = true
						log.Printf("rstore-server: compact: %v (logged once)", err)
					}
				case err != nil:
					log.Printf("rstore-server: compact: %v", err)
				}
				if reclaimed > 0 {
					log.Printf("rstore-server: compacted %d bytes (live ratio was %.2f)", reclaimed, cs.LiveRatio)
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(st),
		// A peer that opens a connection and never finishes its headers
		// must not pin a handler goroutine forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("rstore-server listening on %s (nodes=%d rf=%d batch=%d k=%d backend=%s)",
			*addr, *nodes, *rf, *batch, *k, *backend)
		errc <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("rstore-server: %v: draining", s)
	}
	// Stop background compaction before the store (and its backends) close.
	stopCompact()
	if compactDone != nil {
		<-compactDone
	}
	// Drain in-flight requests (streaming queries included) before closing
	// the store; stragglers are cut off at the deadline.
	shutdownCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Shutdown stops listeners and idle connections but leaves
			// active ones running; sever them hard, or a streaming handler
			// still holding the store's read lock would block the store
			// close below forever.
			log.Printf("rstore-server: drain deadline passed, severing stragglers")
			srv.Close()
		} else {
			log.Printf("rstore-server: shutdown: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		log.Fatalf("rstore-server: close store: %v", err)
	}
	log.Printf("rstore-server: stopped")
}
