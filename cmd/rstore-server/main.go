// Command rstore-server runs the HTTP application server (paper §2.4) over
// an in-process cluster, optionally restoring from / persisting to a
// snapshot file on shutdown.
//
// Usage:
//
//	rstore-server -addr :8080 -nodes 4 -rf 2 [-store data.rstore]
//
// API (JSON):
//
//	POST /commit                       {"parent":-1,"puts":{"k":"<base64>"},"branch":"main"}
//	GET  /version/{id|branch}          full version retrieval
//	GET  /version/{id}/record/{key}    point retrieval
//	GET  /version/{id}/range?lo=&hi=   partial version retrieval
//	GET  /history/{key}                record evolution
//	GET  /branches                     branch tips
//	PUT  /branch/{name}                {"version":3}
//	POST /flush                        force online partitioning
//	GET  /stats                        store statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"rstore"
	"rstore/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		nodes     = flag.Int("nodes", 1, "cluster nodes")
		rf        = flag.Int("rf", 1, "replication factor")
		batch     = flag.Int("batch", 16, "online partitioning batch size")
		k         = flag.Int("k", 1, "max sub-chunk size (record compression)")
		chunkKB   = flag.Int("chunk-kb", 1024, "chunk capacity in KiB")
		storePath = flag.String("store", "", "snapshot file to restore from (optional)")
	)
	flag.Parse()

	kv, err := rstore.OpenCluster(rstore.ClusterConfig{
		Nodes: *nodes, ReplicationFactor: *rf, Cost: rstore.DefaultCostModel(),
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := rstore.Config{
		KV: kv, BatchSize: *batch, SubChunkK: *k, ChunkCapacity: *chunkKB << 10,
	}

	var st *rstore.Store
	if *storePath != "" {
		if f, err := os.Open(*storePath); err == nil {
			if err := kv.Restore(f); err != nil {
				log.Fatalf("restore %s: %v", *storePath, err)
			}
			f.Close()
			st, err = rstore.Load(cfg)
			if err != nil {
				log.Fatalf("load: %v", err)
			}
			log.Printf("restored %d versions from %s", st.NumVersions(), *storePath)
		}
	}
	if st == nil {
		st, err = rstore.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	h := server.New(st)
	log.Printf("rstore-server listening on %s (nodes=%d rf=%d batch=%d k=%d)",
		*addr, *nodes, *rf, *batch, *k)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
