// Command rstore-server runs the HTTP application server (paper §2.4) over
// an in-process cluster, optionally restoring from / persisting to a
// snapshot file on shutdown.
//
// Usage:
//
//	rstore-server -addr :8080 -nodes 4 -rf 2 [-store data.rstore]
//	rstore-server -addr :8080 -backend disklog -data /var/lib/rstore
//
// With -backend disklog every node's data lives under the -data directory
// and survives restarts: the server replays the segment files on boot and
// reopens the store if one was previously committed there. The -store
// snapshot file applies to the memory backend only.
//
// API (JSON):
//
//	POST /commit                       {"parent":-1,"puts":{"k":"<base64>"},"branch":"main"}
//	GET  /version/{id|branch}          full version retrieval
//	GET  /version/{id}/record/{key}    point retrieval
//	GET  /version/{id}/range?lo=&hi=   partial version retrieval
//	GET  /history/{key}                record evolution
//	GET  /branches                     branch tips
//	PUT  /branch/{name}                {"version":3}
//	POST /flush                        force online partitioning
//	GET  /stats                        store statistics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"rstore"
	"rstore/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		nodes     = flag.Int("nodes", 1, "cluster nodes")
		rf        = flag.Int("rf", 1, "replication factor")
		batch     = flag.Int("batch", 16, "online partitioning batch size")
		k         = flag.Int("k", 1, "max sub-chunk size (record compression)")
		chunkKB   = flag.Int("chunk-kb", 1024, "chunk capacity in KiB")
		backend   = flag.String("backend", "memory", "storage backend: memory|disklog")
		dataDir   = flag.String("data", "rstore-data", "data directory for -backend disklog")
		storePath = flag.String("store", "", "snapshot file to restore from (memory backend only)")
	)
	flag.Parse()

	kv, err := rstore.OpenCluster(rstore.ClusterConfig{
		Nodes: *nodes, ReplicationFactor: *rf, Cost: rstore.DefaultCostModel(),
		Engine: *backend, Dir: *dataDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := rstore.Config{
		KV: kv, BatchSize: *batch, SubChunkK: *k, ChunkCapacity: *chunkKB << 10,
	}

	var st *rstore.Store
	switch {
	case *backend == rstore.EngineDisklog:
		// The data directory is the store; reopen it if one was committed.
		exists, err := rstore.Exists(kv)
		if err != nil {
			log.Fatalf("probe %s: %v", *dataDir, err)
		}
		if exists {
			st, err = rstore.Load(cfg)
			if err != nil {
				log.Fatalf("load %s: %v", *dataDir, err)
			}
			log.Printf("reopened %d versions from %s", st.NumVersions(), *dataDir)
		}
	case *storePath != "":
		if f, err := os.Open(*storePath); err == nil {
			if err := kv.Restore(f); err != nil {
				log.Fatalf("restore %s: %v", *storePath, err)
			}
			f.Close()
			st, err = rstore.Load(cfg)
			if err != nil {
				log.Fatalf("load: %v", err)
			}
			log.Printf("restored %d versions from %s", st.NumVersions(), *storePath)
		}
	}
	if st == nil {
		st, err = rstore.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *backend == rstore.EngineDisklog {
			// Establish the recovery root immediately: without a manifest,
			// commits acknowledged before the first flush/SetBranch could
			// not be replayed after a crash.
			if err := st.Checkpoint(); err != nil {
				log.Fatalf("checkpoint %s: %v", *dataDir, err)
			}
		}
	}

	h := server.New(st)
	log.Printf("rstore-server listening on %s (nodes=%d rf=%d batch=%d k=%d backend=%s)",
		*addr, *nodes, *rf, *batch, *k, *backend)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
