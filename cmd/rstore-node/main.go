// Command rstore-node runs one storage node: a durable disklog backend
// served over TCP with the engine wire protocol, so a cluster of real
// machines can replace the in-process simulator. Point a cluster at a set
// of nodes with `-backend remote -node-addrs host1:7420,host2:7420,...` on
// cmd/rstore, cmd/rstore-server, or cmd/rstore-bench (or
// rstore.ClusterConfig{Engine: rstore.EngineRemote, NodeAddrs: ...} from
// the library).
//
// Usage:
//
//	rstore-node -addr :7420 -data /var/lib/rstore-node
//
// Besides data tables, a node may host cluster bookkeeping written by its
// clients through the same engine seam: the !cluster ring-position pin and
// the !hints table, where writes missed by a down peer are parked durably
// until the peer returns (replication repair's hinted handoff). Both are
// node-local and excluded from snapshots.
//
// The data directory is flock-ed against concurrent daemons and replayed
// on start (torn tails truncated). SIGINT/SIGTERM shut down gracefully:
// stop accepting, drain in-flight requests (severing stragglers after a
// grace period), then sync and close the backend. Writes are durable per
// batch regardless — a killed node loses only what it never acknowledged.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rstore/internal/engine/disklog"
	"rstore/internal/engine/remote/engined"
)

func main() {
	var (
		addr      = flag.String("addr", ":7420", "listen address")
		dataDir   = flag.String("data", "", "data directory (required)")
		segmentMB = flag.Int("segment-mb", 0, "segment rotation threshold in MiB (0 = default 64)")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("rstore-node: -data is required")
	}

	be, err := disklog.Open(*dataDir, disklog.Options{SegmentBytes: int64(*segmentMB) << 20})
	if err != nil {
		log.Fatalf("rstore-node: open %s: %v", *dataDir, err)
	}
	srv, err := engined.Start(*addr, be)
	if err != nil {
		be.Close()
		log.Fatalf("rstore-node: %v", err)
	}
	log.Printf("rstore-node serving %s on %s (%d bytes resident)",
		*dataDir, srv.Addr(), be.BytesStored())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("rstore-node draining")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rstore-node: shutdown: %v", err)
	}
	if err := be.Close(); err != nil {
		log.Fatalf("rstore-node: close %s: %v", *dataDir, err)
	}
	log.Printf("rstore-node stopped")
}
