// Command rstore-node runs one storage node: a durable backend (disklog by
// default, or an LSM tree with -backend lsm) served over TCP with the
// engine wire protocol, so a cluster of real machines can replace the
// in-process simulator. Point a cluster at a set of nodes with `-backend
// remote -node-addrs host1:7420,host2:7420,...` on cmd/rstore,
// cmd/rstore-server, or cmd/rstore-bench (or
// rstore.ClusterConfig{Engine: rstore.EngineRemote, NodeAddrs: ...} from
// the library).
//
// Usage:
//
//	rstore-node -addr :7420 -data /var/lib/rstore-node
//	rstore-node -addr :7420 -backend lsm -data /var/lib/rstore-node
//	rstore-node -addr :7420 -data /var/lib/rstore-node -compact-interval 5m -compact-live-ratio 0.6
//
// With -compact-interval set, the node periodically checks its storage's
// live ratio (live bytes / disk bytes) and runs a compaction — a
// crash-safe merge of only-live records into fresh files — whenever the
// ratio falls below -compact-live-ratio. Clients can also trigger a
// compaction on demand through the wire protocol (kvstore.Store.Compact).
// A -backend memory node (volatile, for tests) does not compact; the
// mismatch with -compact-interval is logged once at startup rather than
// every tick.
//
// Besides data tables, a node may host cluster bookkeeping written by its
// clients through the same engine seam: the !cluster ring-position pin and
// the !hints table, where writes missed by a down peer are parked durably
// until the peer returns (replication repair's hinted handoff). Both are
// node-local and excluded from snapshots.
//
// The data directory is flock-ed against concurrent daemons and replayed
// on start (torn tails truncated). SIGINT/SIGTERM shut down gracefully:
// stop accepting, drain in-flight requests (severing stragglers after a
// grace period), then sync and close the backend. Writes are durable per
// batch regardless — a killed node loses only what it never acknowledged.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote/engined"
)

func main() {
	var (
		addr         = flag.String("addr", ":7420", "listen address")
		backend      = flag.String("backend", "disklog", "storage backend: disklog|lsm|memory")
		dataDir      = flag.String("data", "", "data directory (required for disklog/lsm)")
		segmentMB    = flag.Int("segment-mb", 0, "disklog segment rotation threshold in MiB (0 = default 64)")
		compactEvery = flag.Duration("compact-interval", 0, "check the live ratio and compact at this cadence (0 = only on client demand)")
		compactRatio = flag.Float64("compact-live-ratio", 0.6, "compact when live bytes / disk bytes falls below this (with -compact-interval)")
		aeEvery      = flag.Duration("anti-entropy-interval", 0, "pre-compute hash-tree digests at this cadence so client anti-entropy syncs answer from warm state (0 = compute on demand)")
	)
	flag.Parse()

	var be engine.Backend
	var err error
	where := *dataDir
	switch *backend {
	case "disklog", "lsm":
		if *dataDir == "" {
			log.Fatalf("rstore-node: -backend %s requires -data", *backend)
		}
		if *backend == "disklog" {
			be, err = disklog.Open(*dataDir, disklog.Options{SegmentBytes: int64(*segmentMB) << 20})
		} else {
			be, err = lsm.Open(*dataDir, lsm.Options{})
		}
	case "memory":
		be, where = memory.New(), "memory (volatile)"
	default:
		log.Fatalf("rstore-node: unknown -backend %q (want disklog, lsm, or memory)", *backend)
	}
	if err != nil {
		log.Fatalf("rstore-node: open %s: %v", *dataDir, err)
	}
	srv, err := engined.Start(*addr, be)
	if err != nil {
		be.Close()
		log.Fatalf("rstore-node: %v", err)
	}
	log.Printf("rstore-node serving %s on %s (%d bytes resident)",
		where, srv.Addr(), be.BytesStored())

	// Background compaction: live-ratio-triggered so a write-once workload
	// never pays a rewrite, while an overwrite-heavy one converges back to
	// roughly its live volume every interval. A backend without compaction
	// support is reported once here, not on every tick.
	compactCtx, stopCompact := context.WithCancel(context.Background())
	var compactDone chan struct{}
	if c, ok := be.(engine.Compactor); !ok {
		if *compactEvery > 0 {
			log.Printf("rstore-node: -backend %s does not support compaction (%v); -compact-interval ignored",
				*backend, engine.ErrNoCompaction)
		}
	} else if *compactEvery > 0 {
		compactDone = make(chan struct{})
		go func() {
			defer close(compactDone)
			t := time.NewTicker(*compactEvery)
			defer t.Stop()
			for {
				select {
				case <-compactCtx.Done():
					return
				case <-t.C:
				}
				st, err := c.CompactionStats(compactCtx)
				if err != nil || st.LiveRatio() >= *compactRatio {
					continue
				}
				before := st.DiskBytes
				st, err = c.Compact(compactCtx)
				if err != nil {
					log.Printf("rstore-node: compact: %v", err)
					continue
				}
				log.Printf("rstore-node: compacted %s: %d -> %d disk bytes (live ratio %.2f)",
					where, before, st.DiskBytes, st.LiveRatio())
			}
		}()
	}

	// Hash-tree warm loop: cluster clients running anti-entropy
	// (kvstore RepairOptions.AntiEntropyInterval) fetch a digest of every
	// table each sync round. Digesting on demand makes the client's tick
	// pay a full table sweep; digesting here keeps the backend's memoized
	// digest (the LSM engine caches per logical generation) warm so those
	// requests answer from cache. Backends that recompute per call gain
	// nothing, and backends without hashing are reported once at startup.
	aeCtx, stopAE := context.WithCancel(context.Background())
	var aeDone chan struct{}
	if hr, ok := be.(engine.HashRanger); !ok {
		if *aeEvery > 0 {
			log.Printf("rstore-node: -backend %s does not support hash trees (%v); -anti-entropy-interval ignored",
				*backend, engine.ErrNoHashRange)
		}
	} else if *aeEvery > 0 {
		aeDone = make(chan struct{})
		go func() {
			defer close(aeDone)
			t := time.NewTicker(*aeEvery)
			defer t.Stop()
			for {
				select {
				case <-aeCtx.Done():
					return
				case <-t.C:
				}
				tables, err := be.Tables(aeCtx)
				if err != nil {
					continue
				}
				for _, table := range tables {
					if _, err := hr.HashTree(aeCtx, table, engine.DefaultHashFanout); err != nil {
						if aeCtx.Err() != nil {
							return
						}
						log.Printf("rstore-node: hash tree %s: %v", table, err)
						break
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("rstore-node draining")
	stopCompact()
	if compactDone != nil {
		<-compactDone
	}
	stopAE()
	if aeDone != nil {
		<-aeDone
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rstore-node: shutdown: %v", err)
	}
	if err := be.Close(); err != nil {
		log.Fatalf("rstore-node: close %s: %v", where, err)
	}
	log.Printf("rstore-node stopped")
}
