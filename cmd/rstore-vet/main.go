// Command rstore-vet runs the project's static-analysis suite
// (docs/ANALYZERS.md): the crash-safety, error-classification, context,
// locking, lock-ordering, goroutine-lifecycle, wire-protocol-symmetry,
// and clock-seam invariants the storage engines and the remote path
// depend on, enforced mechanically instead of by reviewer memory.
//
// Two modes share the same analyzers and diagnostics:
//
//	rstore-vet ./...                     # standalone, from the module root
//	go vet -vettool=$(pwd)/rstore-vet ./...  # unit mode, driven by cmd/go
//
// Standalone mode loads non-test packages itself (go list -export); unit
// mode speaks cmd/go's vet.cfg protocol, which also covers test files and
// test-variant packages — CI uses it for exactly that reason.
//
// Intentional violations are suppressed with a reasoned escape comment on
// the offending line or the line above:
//
//	//lint:rstore-vet <analyzer>: <reason>
//
// The reason is mandatory; escapes without one are diagnostics themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rstore/internal/analysis"
	"rstore/internal/analysis/rvet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rstore-vet", flag.ContinueOnError)
	fs.Usage = usage
	listFlag := fs.Bool("list", false, "print each analyzer with its one-line doc and exit")
	flagsFlag := fs.Bool("flags", false, "print the JSON flag description cmd/go's vet driver expects and exit")
	versionFlag := fs.String("V", "", "print version information (cmd/go tool-ID handshake); -V=full is the form cmd/go uses")
	jsonDummy := fs.Bool("json", false, "accepted for vet-driver compatibility (diagnostics are plain text)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	_ = jsonDummy

	suite := analysis.All()
	switch {
	case *versionFlag != "":
		// cmd/go fingerprints a -vettool by running it with -V=full and
		// expects "<name> version <non-devel-version>" on stdout.
		fmt.Printf("%s version go1-rstore-vet-1\n", filepath.Base(os.Args[0]))
		return 0
	case *flagsFlag:
		// cmd/go interrogates the tool's analyzer flags before the first
		// real run; the suite is not individually toggleable.
		fmt.Println("[]")
		return 0
	case *listFlag:
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Summary())
		}
		fmt.Printf("\nescape hatch: //lint:rstore-vet <analyzer>: <reason>   (reason required)\n")
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return rvet.RunUnit(rest[0], suite)
	}
	if len(rest) == 0 {
		usage()
		return 1
	}
	pkgs, err := rvet.LoadPackages(".", rest)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rstore-vet: %v\n", err)
		return 1
	}
	cfg := rvet.RunConfig{Load: rvet.NewModuleLoader(".")}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range rvet.RunWith(pkg, suite, cfg) {
			fmt.Fprintln(os.Stderr, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "rstore-vet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  rstore-vet [packages]          analyze packages (standalone; e.g. rstore-vet ./...)
  rstore-vet -list               print the analyzer suite
  go vet -vettool=<path> ./...   run under cmd/go (covers test files too)
`)
}
