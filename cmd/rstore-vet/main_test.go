package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"rstore/internal/analysis"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestList checks that -list prints every analyzer with its one-line doc,
// and that the suite is exactly the eight documented analyzers.
func TestList(t *testing.T) {
	var code int
	out := capture(t, func() { code = run([]string{"-list"}) })
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	want := []string{
		"clockseam", "ctxfirst", "errclass", "fsyncrename",
		"goroutinelife", "lockio", "lockorder", "wiresym",
	}
	suite := analysis.All()
	if len(suite) != len(want) {
		t.Errorf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, name := range want {
		if i >= len(suite) || suite[i].Name != name {
			t.Errorf("suite[%d] = %q, want %q", i, suite[min(i, len(suite)-1)].Name, name)
		}
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
		if !strings.Contains(out, a.Summary()) {
			t.Errorf("-list output missing %q's one-line doc %q", a.Name, a.Summary())
		}
	}
	if !strings.Contains(out, "//lint:rstore-vet") {
		t.Error("-list output does not document the escape hatch")
	}
}

// TestVersionHandshake checks the cmd/go -vettool fingerprint protocol:
// -V=full must print "<name> version <non-devel-version>".
func TestVersionHandshake(t *testing.T) {
	var code int
	out := capture(t, func() { code = run([]string{"-V=full"}) })
	if code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	fields := strings.Fields(out)
	if len(fields) != 3 || fields[1] != "version" || fields[2] == "devel" {
		t.Errorf("-V=full printed %q, want \"<name> version <version>\"", out)
	}
}

// TestFlagsHandshake checks the vet driver's flag interrogation: -flags
// must print a JSON array.
func TestFlagsHandshake(t *testing.T) {
	var code int
	out := capture(t, func() { code = run([]string{"-flags"}) })
	if code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("-flags printed %q, want \"[]\"", out)
	}
}

func TestNoArgsUsage(t *testing.T) {
	if code := run(nil); code != 1 {
		t.Errorf("no-args run exited %d, want 1", code)
	}
}
