// Command rstore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	rstore-bench -exp fig8            # one experiment
//	rstore-bench -all                 # everything, paper order
//	rstore-bench -all -scale full     # heavier datasets
//	rstore-bench -list                # catalog of experiments
//
// Output is printed as aligned text tables, one per paper artifact, each
// annotated with the paper's reported shape for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rstore/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments")
		scale   = flag.String("scale", "quick", "dataset scale: quick|full")
		queries = flag.Int("queries", 0, "override query sample size")
		seed    = flag.Int64("seed", 0, "override RNG seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := bench.Quick()
	if *scale == "full" {
		opts = bench.Full()
	}
	if *queries > 0 {
		opts.Queries = *queries
	}
	if *seed != 0 {
		opts.Seed = *seed
	}

	var runs []bench.Experiment
	switch {
	case *all:
		runs = bench.Experiments()
	case *exp != "":
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runs = []bench.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "rstore-bench: need -exp <id>, -all, or -list")
		os.Exit(2)
	}

	for _, e := range runs {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rstore-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
