// Command rstore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	rstore-bench -exp fig8            # one experiment
//	rstore-bench -all                 # everything, paper order
//	rstore-bench -all -scale full     # heavier datasets
//	rstore-bench -list                # catalog of experiments
//	rstore-bench -exp readheavy -json .   # also write BENCH_readheavy.json
//
// Output is printed as aligned text tables, one per paper artifact, each
// annotated with the paper's reported shape for comparison. With -json, a
// machine-readable BENCH_<exp>.json snapshot (backend, workload
// parameters, tables, and key metrics such as throughput and latency
// percentiles) is written per experiment into the given directory, so the
// perf trajectory is tracked across changes instead of quoted in prose.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rstore"
	"rstore/internal/bench"
)

func main() { os.Exit(run()) }

// run carries the real main so deferred cleanup (the auto-created disklog
// temp directory) survives every exit path.
func run() int {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		list      = flag.Bool("list", false, "list experiments")
		scale     = flag.String("scale", "quick", "dataset scale: quick|full")
		queries   = flag.Int("queries", 0, "override query sample size")
		seed      = flag.Int64("seed", 0, "override RNG seed")
		readRatio = flag.Float64("read-ratio", 0, "read fraction of the mixed experiment's op stream (default 0.95, YCSB B)")
		backend   = flag.String("backend", "memory", "cluster storage backend: memory|disklog|lsm|remote")
		dataDir   = flag.String("data", "", "data directory for -backend disklog/lsm (each cluster gets a subdirectory)")
		nodeAddrs = flag.String("node-addrs", "", "comma-separated rstore-node addresses for -backend remote\n(the address list fixes the node count; each cluster a run opens wipes the\ndaemons first via the wire reset op, so one daemon set serves a whole run)")
		jsonDir   = flag.String("json", "", "write a BENCH_<exp>.json snapshot per experiment into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Description)
		}
		return 0
	}

	opts := bench.Quick()
	if *scale == "full" {
		opts = bench.Full()
	}
	if *queries > 0 {
		opts.Queries = *queries
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *readRatio > 0 {
		opts.ReadRatio = *readRatio
	}
	switch *backend {
	case "", "memory":
	case "disklog", "lsm":
		opts.Engine = *backend
		opts.DataDir = *dataDir
		if opts.DataDir == "" {
			d, err := os.MkdirTemp("", "rstore-bench-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "rstore-bench:", err)
				return 1
			}
			defer os.RemoveAll(d)
			opts.DataDir = d
		}
	case "remote":
		opts.Engine = *backend
		opts.NodeAddrs = rstore.SplitNodeAddrs(*nodeAddrs)
		if len(opts.NodeAddrs) == 0 {
			fmt.Fprintln(os.Stderr, "rstore-bench: -backend remote needs -node-addrs")
			return 2
		}
	default:
		fmt.Fprintf(os.Stderr, "rstore-bench: unknown -backend %q\n", *backend)
		return 2
	}

	var runs []bench.Experiment
	switch {
	case *all:
		runs = bench.Experiments()
	case *exp != "":
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		runs = []bench.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "rstore-bench: need -exp <id>, -all, or -list")
		return 2
	}

	for _, e := range runs {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rstore-bench: %s: %v\n", e.ID, err)
			return 1
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		elapsed := time.Since(start)
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			snap := bench.NewSnapshot(e.ID, opts, elapsed, tables)
			if err := snap.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "rstore-bench:", err)
				return 1
			}
			fmt.Printf("(snapshot written to %s)\n", path)
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	return 0
}
