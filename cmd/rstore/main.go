// Command rstore is a small VCS-style CLI over a file-backed store,
// mirroring the application-server commands of paper §2.4: init, commit,
// checkout (pull a version), get, history, log, and branch.
//
// Three persistence modes, selected by -backend:
//
//   - memory (default): state persists in a single snapshot file (default
//     .rstore) via the cluster's Dump/Restore; every mutating command
//     rewrites it.
//   - disklog: state lives in the log-structured data directory (-data,
//     default <store>.d); every command reopens the cluster by replaying
//     the segment files, and mutations are fsynced per batch.
//   - lsm: state lives in an LSM-tree data directory (-data, default
//     <store>.d) — WAL + sorted tables; same durability as disklog,
//     faster point reads.
//   - remote: state lives on rstore-node daemons (-node-addrs, one node
//     per address); every command talks to them over the wire.
//
// Usage:
//
//	rstore -store data.rstore init
//	rstore -backend disklog -data data.d init
//	rstore -backend remote -node-addrs host1:7420,host2:7420 init
//	rstore -backend remote -rf 2 -node-addrs host1:7420,host2:7420 init
//	rstore commit -branch main -put doc1=@file.json -put doc2='{"x":1}' -del doc3
//	rstore log
//	rstore checkout -version 3 -out dir/
//	rstore get -key doc1 -version 3
//	rstore history -key doc1
//	rstore branch -name dev -version 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"rstore"
	"rstore/internal/kvstore"
)

func main() {
	// Ctrl-C cancels in-flight queries (the streaming read path aborts
	// mid-fetch); mutations run detached so an interrupt cannot leave a
	// half-written store.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rstore:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	global := flag.NewFlagSet("rstore", flag.ContinueOnError)
	storePath := global.String("store", ".rstore", "snapshot file (memory backend)")
	backend := global.String("backend", "memory", "storage backend: memory|disklog|lsm|remote")
	dataDir := global.String("data", "", "data directory for -backend disklog/lsm (default <store>.d)")
	nodeAddrs := global.String("node-addrs", "", "comma-separated rstore-node addresses for -backend remote")
	rf := global.Int("rf", 1, "replication factor (-backend remote; repair keeps replicas converged).\nPass the SAME value on every command against a cluster: it is per-invocation\nclient config, and a lower value silently under-replicates new writes")
	tombTTL := global.Duration("tombstone-ttl", 0, "collect tombstones older than this once all replicas agree (0 = ack-based GC only)")
	if err := global.Parse(args); err != nil {
		return err
	}
	env := cliEnv{
		store: *storePath, backend: *backend, data: *dataDir,
		addrs: rstore.SplitNodeAddrs(*nodeAddrs), rf: *rf,
		repair: rstore.RepairOptions{TombstoneTTL: *tombTTL},
	}
	switch env.backend {
	case rstore.EngineMemory, rstore.EngineDisklog, rstore.EngineLSM:
	case rstore.EngineRemote:
		if len(env.addrs) == 0 {
			return fmt.Errorf("-backend remote needs -node-addrs host:port[,host:port...]")
		}
	default:
		return fmt.Errorf("unknown -backend %q (want memory, disklog, lsm, or remote)", env.backend)
	}
	if env.data == "" {
		env.data = env.store + ".d"
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("need a command: init|commit|log|checkout|get|history|branch|stats")
	}
	cmd, cmdArgs := rest[0], rest[1:]

	if cmd == "init" {
		kv, err := env.openCluster(ctx)
		if err != nil {
			return err
		}
		// Idempotent with persist's close; releases the disklog directory
		// lock on every error path too.
		defer kv.Close()
		if env.durable() {
			// A point probe, not a full Load: only a cleanly-missing
			// manifest means "not initialized"; I/O errors must surface,
			// not be silently re-initialized over.
			exists, err := rstore.Exists(ctx, kv)
			if err != nil {
				return err
			}
			if exists {
				return fmt.Errorf("store already initialized in %s", env.where())
			}
		}
		st, err := rstore.Open(ctx, rstore.Config{KV: kv})
		if err != nil {
			return err
		}
		mctx := context.WithoutCancel(ctx)
		if _, err := st.Commit(mctx, rstore.NoParent, rstore.Change{}); err != nil {
			return err
		}
		if err := st.Flush(mctx); err != nil {
			return err
		}
		if err := st.SetBranch(mctx, "main", 0); err != nil {
			return err
		}
		if err := env.persist(kv, st); err != nil {
			return err
		}
		fmt.Printf("initialized empty store at %s (root version 0, branch main)\n", env.where())
		return nil
	}

	kv, st, err := env.load(ctx)
	if err != nil {
		return err
	}
	defer kv.Close() // no-op for memory; syncs and releases disklog files

	switch cmd {
	case "commit":
		fs := flag.NewFlagSet("commit", flag.ContinueOnError)
		branch := fs.String("branch", "main", "branch to advance")
		var puts, dels multiFlag
		fs.Var(&puts, "put", "key=value or key=@file (repeatable)")
		fs.Var(&dels, "del", "key to delete (repeatable)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		parent, err := st.Tip(*branch)
		if err != nil {
			return err
		}
		ch := rstore.Change{Puts: map[rstore.Key][]byte{}}
		for _, p := range puts {
			k, v, ok := strings.Cut(p, "=")
			if !ok {
				return fmt.Errorf("bad -put %q (want key=value)", p)
			}
			var val []byte
			if strings.HasPrefix(v, "@") {
				val, err = os.ReadFile(v[1:])
				if err != nil {
					return err
				}
			} else {
				val = []byte(v)
			}
			ch.Puts[rstore.Key(k)] = val
		}
		for _, k := range dels {
			ch.Deletes = append(ch.Deletes, rstore.Key(k))
		}
		mctx := context.WithoutCancel(ctx)
		v, err := st.Commit(mctx, parent, ch)
		if err != nil {
			return err
		}
		if err := st.Flush(mctx); err != nil {
			return err
		}
		if err := st.SetBranch(mctx, *branch, v); err != nil {
			return err
		}
		if err := env.persist(kv, st); err != nil {
			return err
		}
		fmt.Printf("committed version %d on %s (%d puts, %d deletes)\n",
			v, *branch, len(ch.Puts), len(ch.Deletes))
		return nil

	case "log":
		g := st.Graph()
		for v := st.NumVersions() - 1; v >= 0; v-- {
			vv := rstore.VersionID(v)
			parents := g.Parents(vv)
			tag := ""
			for _, b := range st.Branches() {
				if tip, err := st.Tip(b); err == nil && tip == vv {
					tag += " <- " + b
				}
			}
			fmt.Printf("version %-4d parents=%v depth=%d%s\n", v, parents, g.Depth(vv), tag)
		}
		return nil

	case "checkout":
		fs := flag.NewFlagSet("checkout", flag.ContinueOnError)
		version := fs.Int("version", -1, "version id")
		branch := fs.String("branch", "", "branch name (alternative to -version)")
		out := fs.String("out", "", "output directory (default: print keys)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		v, err := resolveVersion(st, *version, *branch)
		if err != nil {
			return err
		}
		recs, stats, err := st.GetVersionAll(ctx, v)
		if err != nil {
			return err
		}
		if *out == "" {
			for _, r := range recs {
				fmt.Printf("%s (origin v%d, %d bytes)\n", r.CK.Key, r.CK.Version, len(r.Value))
			}
		} else {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			for _, r := range recs {
				name := filepath.Join(*out, sanitize(string(r.CK.Key)))
				if err := os.WriteFile(name, r.Value, 0o644); err != nil {
					return err
				}
			}
		}
		fmt.Printf("checked out version %d: %d records (span=%d chunks)\n", v, len(recs), stats.Span)
		return nil

	case "get":
		fs := flag.NewFlagSet("get", flag.ContinueOnError)
		key := fs.String("key", "", "primary key")
		version := fs.Int("version", -1, "version id")
		branch := fs.String("branch", "", "branch name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		v, err := resolveVersion(st, *version, *branch)
		if err != nil {
			return err
		}
		rec, _, err := st.GetRecord(ctx, rstore.Key(*key), v)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", rec.Value)
		return nil

	case "history":
		fs := flag.NewFlagSet("history", flag.ContinueOnError)
		key := fs.String("key", "", "primary key")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		// Stream: revisions print as their chunks arrive.
		cur := st.GetHistory(ctx, rstore.Key(*key))
		for r, err := range cur.Records() {
			if err != nil {
				return err
			}
			fmt.Printf("v%-4d %s\n", r.CK.Version, r.Value)
		}
		return nil

	case "branch":
		fs := flag.NewFlagSet("branch", flag.ContinueOnError)
		name := fs.String("name", "", "branch name")
		version := fs.Int("version", -1, "version id")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if *name == "" {
			for _, b := range st.Branches() {
				tip, _ := st.Tip(b)
				fmt.Printf("%-12s v%d\n", b, tip)
			}
			return nil
		}
		if err := st.SetBranch(context.WithoutCancel(ctx), *name, rstore.VersionID(*version)); err != nil {
			return err
		}
		if err := env.persist(kv, st); err != nil {
			return err
		}
		fmt.Printf("branch %s -> v%d\n", *name, *version)
		return nil

	case "stats":
		s := kv.Stats(ctx)
		fmt.Printf("versions:      %d\n", st.NumVersions())
		fmt.Printf("chunks:        %d\n", st.NumChunks())
		fmt.Printf("pending:       %d\n", st.PendingVersions())
		fmt.Printf("total span:    %d\n", st.TotalVersionSpan())
		fmt.Printf("stored bytes:  %d\n", s.BytesStored)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func resolveVersion(st *rstore.Store, version int, branch string) (rstore.VersionID, error) {
	if branch != "" {
		return st.Tip(branch)
	}
	if version < 0 {
		return 0, fmt.Errorf("need -version or -branch")
	}
	return rstore.VersionID(version), nil
}

func sanitize(key string) string {
	return strings.Map(func(r rune) rune {
		if r == '/' || r == '\\' || r == 0 {
			return '_'
		}
		return r
	}, key)
}

// cliEnv is the persistence environment the global flags select.
type cliEnv struct {
	store   string   // snapshot file (memory backend)
	backend string   // "memory", "disklog", "lsm", or "remote"
	data    string   // disklog/lsm data directory
	addrs   []string // rstore-node addresses (remote backend)
	rf      int      // replication factor (remote backend)
	repair  rstore.RepairOptions
}

// durable reports that store state lives in the backend itself (a data
// directory or a set of storage daemons) rather than a snapshot file.
func (e cliEnv) durable() bool { return e.backend != rstore.EngineMemory }

// onDisk reports that store state lives in a local data directory.
func (e cliEnv) onDisk() bool {
	return e.backend == rstore.EngineDisklog || e.backend == rstore.EngineLSM
}

// where names the place the store lives, for messages.
func (e cliEnv) where() string {
	switch {
	case e.onDisk():
		return e.data
	case e.backend == rstore.EngineRemote:
		return "nodes " + strings.Join(e.addrs, ",")
	default:
		return e.store
	}
}

// openCluster opens the cluster in the configured backend (validated up
// front in run): single-node for the local engines, one node per daemon
// address for remote.
func (e cliEnv) openCluster(ctx context.Context) (*kvstore.Store, error) {
	if e.backend == rstore.EngineRemote {
		return rstore.OpenCluster(ctx, rstore.ClusterConfig{
			Engine: e.backend, NodeAddrs: e.addrs,
			ReplicationFactor: e.rf, Repair: e.repair,
		})
	}
	return rstore.OpenCluster(ctx, rstore.ClusterConfig{Nodes: 1, Engine: e.backend, Dir: e.data})
}

// load reopens the persisted store: from the snapshot file (memory), by
// replaying the data directory's segment files (disklog), or from the
// remote nodes' contents.
func (e cliEnv) load(ctx context.Context) (*kvstore.Store, *rstore.Store, error) {
	if e.durable() {
		if e.onDisk() {
			if _, err := os.Stat(e.data); err != nil {
				return nil, nil, fmt.Errorf("open store %s (run init first): %w", e.data, err)
			}
		}
		kv, err := e.openCluster(ctx)
		if err != nil {
			return nil, nil, err
		}
		st, err := rstore.Load(ctx, rstore.Config{KV: kv})
		if err != nil {
			kv.Close()
			return nil, nil, fmt.Errorf("open store %s (run init first): %w", e.where(), err)
		}
		return kv, st, nil
	}
	f, err := os.Open(e.store)
	if err != nil {
		return nil, nil, fmt.Errorf("open store %s (run init first): %w", e.store, err)
	}
	defer f.Close()
	kv, err := e.openCluster(ctx)
	if err != nil {
		return nil, nil, err
	}
	if err := kv.Restore(ctx, f); err != nil {
		return nil, nil, err
	}
	st, err := rstore.Load(ctx, rstore.Config{KV: kv})
	if err != nil {
		return nil, nil, err
	}
	return kv, st, nil
}

// persist makes the store durable: flush pending versions, then rewrite the
// snapshot file (memory) or release the backend (disklog/remote — the flush
// itself committed every write durably; Close catches strays).
func (e cliEnv) persist(kv *kvstore.Store, st *rstore.Store) error {
	ctx := context.Background() // durability point: never cancellable
	if err := st.Flush(ctx); err != nil {
		return err
	}
	if e.durable() {
		return kv.Close()
	}
	tmp := e.store + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := kv.Dump(ctx, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, e.store)
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
