package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives the command with a store file in a temp dir.
func runCLI(t *testing.T, store string, args ...string) error {
	t.Helper()
	return run(context.Background(), append([]string{"-store", store}, args...))
}

func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "data.rstore")

	if err := runCLI(t, store, "init"); err != nil {
		t.Fatalf("init: %v", err)
	}
	if _, err := os.Stat(store); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	// Commit from literal values and from a file.
	docFile := filepath.Join(dir, "doc.json")
	if err := os.WriteFile(docFile, []byte(`{"from":"file"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCLI(t, store, "commit",
		"-put", "a={"+`"x":1}`, "-put", "b=@"+docFile); err != nil {
		t.Fatalf("commit 1: %v", err)
	}
	if err := runCLI(t, store, "commit", "-put", `a={"x":2}`, "-del", "b"); err != nil {
		t.Fatalf("commit 2: %v", err)
	}

	// Reads work across process "restarts" (every call reloads the file).
	if err := runCLI(t, store, "log"); err != nil {
		t.Fatalf("log: %v", err)
	}
	if err := runCLI(t, store, "get", "-key", "a", "-branch", "main"); err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := runCLI(t, store, "history", "-key", "a"); err != nil {
		t.Fatalf("history: %v", err)
	}
	if err := runCLI(t, store, "stats"); err != nil {
		t.Fatalf("stats: %v", err)
	}

	// Checkout into a directory.
	out := filepath.Join(dir, "co")
	if err := runCLI(t, store, "checkout", "-branch", "main", "-out", out); err != nil {
		t.Fatalf("checkout: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(out, "a"))
	if err != nil || string(data) != `{"x":2}` {
		t.Fatalf("checked-out a = %q, %v", data, err)
	}
	if _, err := os.Stat(filepath.Join(out, "b")); err == nil {
		t.Fatal("deleted key b materialized on checkout")
	}

	// Branch management.
	if err := runCLI(t, store, "branch", "-name", "old", "-version", "1"); err != nil {
		t.Fatalf("branch: %v", err)
	}
	if err := runCLI(t, store, "get", "-key", "b", "-branch", "old"); err != nil {
		t.Fatalf("get on old branch: %v", err)
	}
}

// runDiskCLI drives the command in disklog mode against a data directory.
func runDiskCLI(t *testing.T, data string, args ...string) error {
	t.Helper()
	return run(context.Background(), append([]string{"-backend", "disklog", "-data", data}, args...))
}

// TestCLIDisklogLifecycle is the acceptance path: a store committed through
// the CLI on the disklog backend is closed at the end of every command and
// reopened (segment replay) by the next one, and must return identical
// results throughout.
func TestCLIDisklogLifecycle(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "store.d")

	if err := runDiskCLI(t, data, "init"); err != nil {
		t.Fatalf("init: %v", err)
	}
	if _, err := os.Stat(filepath.Join(data, "node-0")); err != nil {
		t.Fatalf("data directory missing: %v", err)
	}
	if err := runDiskCLI(t, data, "init"); err == nil {
		t.Fatal("double init succeeded")
	}

	if err := runDiskCLI(t, data, "commit", "-put", `a={"x":1}`, "-put", "b=bee"); err != nil {
		t.Fatalf("commit 1: %v", err)
	}
	if err := runDiskCLI(t, data, "commit", "-put", `a={"x":2}`, "-del", "b"); err != nil {
		t.Fatalf("commit 2: %v", err)
	}

	// Every invocation is a full close + reopen; reads must serve the
	// committed state.
	for _, cmd := range [][]string{
		{"log"},
		{"get", "-key", "a", "-branch", "main"},
		{"history", "-key", "a"},
		{"stats"},
	} {
		if err := runDiskCLI(t, data, cmd...); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}

	// Version-scan results across reopen: checkout of the tip and of the
	// older version return the exact committed contents.
	out := filepath.Join(dir, "co-tip")
	if err := runDiskCLI(t, data, "checkout", "-branch", "main", "-out", out); err != nil {
		t.Fatalf("checkout tip: %v", err)
	}
	if got, err := os.ReadFile(filepath.Join(out, "a")); err != nil || string(got) != `{"x":2}` {
		t.Fatalf("tip a = %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(out, "b")); err == nil {
		t.Fatal("deleted key b materialized at tip")
	}
	outOld := filepath.Join(dir, "co-old")
	if err := runDiskCLI(t, data, "checkout", "-version", "1", "-out", outOld); err != nil {
		t.Fatalf("checkout old: %v", err)
	}
	if got, err := os.ReadFile(filepath.Join(outOld, "a")); err != nil || string(got) != `{"x":1}` {
		t.Fatalf("old a = %q, %v", got, err)
	}
	if got, err := os.ReadFile(filepath.Join(outOld, "b")); err != nil || string(got) != "bee" {
		t.Fatalf("old b = %q, %v", got, err)
	}

	// Commands before init on a fresh directory fail cleanly.
	if err := runDiskCLI(t, filepath.Join(dir, "nope.d"), "log"); err == nil {
		t.Fatal("log before init succeeded")
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "x.rstore")
	// Commands before init fail cleanly.
	if err := runCLI(t, store, "log"); err == nil {
		t.Fatal("log before init succeeded")
	}
	if err := runCLI(t, store); err == nil || !strings.Contains(err.Error(), "command") {
		t.Fatalf("missing command: %v", err)
	}
	if err := runCLI(t, store, "bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(context.Background(), []string{"-backend", "bogus", "log"}); err == nil || !strings.Contains(err.Error(), "backend") {
		t.Fatalf("unknown backend: %v", err)
	}
	if err := runCLI(t, store, "init"); err != nil {
		t.Fatal(err)
	}
	if err := runCLI(t, store, "commit", "-put", "malformed"); err == nil {
		t.Fatal("malformed -put accepted")
	}
	if err := runCLI(t, store, "get", "-key", "a"); err == nil {
		t.Fatal("get without version/branch accepted")
	}
	if err := runCLI(t, store, "checkout"); err == nil {
		t.Fatal("checkout without version accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b\\c"); got != "a_b_c" {
		t.Fatalf("sanitize = %q", got)
	}
}
