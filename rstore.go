// Package rstore is a distributed multi-version document store: a layer on
// top of a distributed key-value store that compactly stores a large number
// of versions (snapshots) of a collection of keyed documents while
// efficiently answering record, full-version, partial-version, and
// record-evolution queries.
//
// It is an independent reproduction of "RStore: A Distributed Multi-version
// Document Store" (Bhattacherjee & Deshpande, ICDE 2018; arXiv:1802.07693).
//
// # Model
//
// The unit of storage is an immutable record identified by a composite key
// ⟨primary key, origin version⟩. A commit derives a new version from a
// parent by adding, modifying, and deleting records; version histories form
// a branched graph. Records are deduplicated across versions and grouped
// into approximately fixed-size chunks by a partitioning algorithm that
// exploits the version graph, minimizing the number of chunks (the "span")
// any retrieval has to touch. Multiple versions of one record can be
// delta-compressed together in sub-chunks.
//
// # Quick start
//
//	ctx := context.Background()
//	st, _ := rstore.Open(ctx, rstore.Config{})
//	v0, _ := st.Commit(ctx, rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{
//		"patient-1": []byte(`{"age":52}`),
//	}})
//	v1, _ := st.Commit(ctx, v0, rstore.Change{Puts: map[rstore.Key][]byte{
//		"patient-1": []byte(`{"age":53}`),
//	}})
//	rec, _, _ := st.GetRecord(ctx, "patient-1", v1)
//
// # Contexts and streaming queries
//
// Every operation that touches the backing cluster takes a
// context.Context and honors cancellation and deadlines end to end — down
// to the storage-node wire protocol when the cluster is remote. The
// set-returning queries (GetVersion, GetRange, GetHistory) return a
// *Cursor that streams records incrementally as chunks arrive:
//
//	for rec, err := range st.GetVersion(ctx, v1).Records() {
//		if err != nil {
//			return err
//		}
//		use(rec)
//	}
//
// Abandoning the loop (or cancelling ctx) stops further chunk fetches.
// The ...All convenience wrappers (GetVersionAll, GetRangeAll,
// GetHistoryAll) drain the cursor into a sorted slice for callers that
// want the old materialized shape.
//
// See examples/ for complete programs and internal/bench for the harness
// that regenerates the paper's evaluation.
package rstore

import (
	"context"

	"rstore/internal/core"
	"rstore/internal/engine"
	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/types"
)

// Re-exported model types.
type (
	// Key is a record's primary key.
	Key = types.Key
	// VersionID identifies a committed version.
	VersionID = types.VersionID
	// CompositeKey is ⟨primary key, origin version⟩ — the global record id.
	CompositeKey = types.CompositeKey
	// Record is an immutable stored document.
	Record = types.Record
	// Delta is a set of record-level changes between two versions.
	Delta = types.Delta
	// Change is the commit payload: new values and deleted keys.
	Change = core.Change
	// Config configures a Store; the zero value is usable.
	Config = core.Config
	// Store is the versioned document store.
	Store = core.Store
	// QueryStats reports per-query retrieval costs.
	QueryStats = core.QueryStats
	// Cursor is a streaming query result; see Store.GetVersion.
	Cursor = core.Cursor
	// Range selects primary keys for GetRange; build with KeyRange or
	// KeyRangeFrom.
	Range = core.Range
	// VersionDiff is the record-level difference between two versions.
	VersionDiff = core.VersionDiff
	// CacheStats reports chunk-cache effectiveness.
	CacheStats = core.CacheStats
	// Info is a snapshot of store-level statistics.
	Info = core.Info
)

// NoParent is the parent of the first (root) commit.
const NoParent = types.InvalidVersion

// Sentinel errors (match with errors.Is).
var (
	ErrNotFound          = types.ErrNotFound
	ErrVersionUnknown    = types.ErrVersionUnknown
	ErrInconsistentDelta = types.ErrInconsistentDelta
	ErrClosed            = types.ErrClosed
	ErrReadOnly          = types.ErrReadOnly
	// ErrNoCompaction / ErrNoReset report that a cluster node's backend
	// does not implement the optional compaction / wipe extensions (see
	// kvstore.Store.Compact and kvstore.Store.Reset).
	ErrNoCompaction = engine.ErrNoCompaction
	ErrNoReset      = engine.ErrNoReset
	// ErrNoHashRange reports that a cluster node's backend does not
	// implement the optional hash-tree extension the anti-entropy loop
	// requires (see RepairOptions.AntiEntropyInterval).
	ErrNoHashRange = engine.ErrNoHashRange
)

// Open creates a store. With a zero Config it runs on a private single-node
// in-process cluster with the calibrated cost model, Bottom-Up partitioning,
// 1 MiB chunks, and no record-level compression. ctx bounds the open itself
// (a private cluster's geometry probe and hint recovery), not the Store's
// lifetime.
func Open(ctx context.Context, cfg Config) (*Store, error) { return core.Open(ctx, cfg) }

// Load reopens a store persisted in cfg.KV; ctx bounds the recovery scans.
func Load(ctx context.Context, cfg Config) (*Store, error) { return core.Load(ctx, cfg) }

// Exists reports whether kv holds a persisted store, without the cost of a
// full Load.
func Exists(ctx context.Context, kv *kvstore.Store) (bool, error) { return core.Exists(ctx, kv) }

// KeyRange is the bounded key range [lo, hi) for Store.GetRange.
func KeyRange(lo, hi Key) Range { return core.KeyRange(lo, hi) }

// KeyRangeFrom is the unbounded key range [lo, ∞) for Store.GetRange —
// the explicit way to read to the top of the keyspace (no sentinel key).
func KeyRangeFrom(lo Key) Range { return core.KeyRangeFrom(lo) }

// Cluster options for Config.KV.

// ClusterConfig configures the backing key-value cluster.
type ClusterConfig = kvstore.Config

// RepairOptions tunes replication repair — read repair, hinted handoff,
// and tombstone GC — for ClusterConfig.Repair (and Config.Repair on a
// private cluster). The zero value enables repair with defaults whenever
// ClusterConfig.ReplicationFactor > 1.
type RepairOptions = kvstore.RepairOptions

// ClusterStats is a snapshot of cluster counters, including replication
// repair traffic (see kvstore.Store.Stats).
type ClusterStats = kvstore.Stats

// Backend engine names for ClusterConfig.Engine / Config.Engine.
const (
	// EngineMemory is the default in-process map backend; nothing persists.
	EngineMemory = kvstore.EngineMemory
	// EngineDisklog is the log-structured disk backend: append-only segment
	// files with fsync-on-batch durability, replayed on open.
	EngineDisklog = kvstore.EngineDisklog
	// EngineLSM is the log-structured merge-tree disk backend: a WAL-backed
	// memtable flushed into immutable, bloom-filtered, block-cached
	// SSTables, with size-tiered compaction. Same durability contract as
	// EngineDisklog; much faster point reads on overwrite-heavy data.
	EngineLSM = kvstore.EngineLSM
	// EngineRemote speaks the engine wire protocol to one storage daemon
	// (cmd/rstore-node) per ClusterConfig.NodeAddrs entry: a real
	// distributed cluster instead of the in-process simulator. Transient
	// node unavailability is retried and routed around by replication.
	EngineRemote = kvstore.EngineRemote
)

// CostModel is the cluster's simulated network cost model.
type CostModel = kvstore.CostModel

// OpenCluster creates a distributed key-value cluster (in-process or, with
// EngineRemote, over real storage daemons) to back one or more stores. ctx
// bounds the open's wire round-trips (geometry probe, hint recovery), not
// the cluster's lifetime.
func OpenCluster(ctx context.Context, cfg ClusterConfig) (*kvstore.Store, error) {
	return kvstore.Open(ctx, cfg)
}

// SplitNodeAddrs parses a comma-separated daemon address list into
// ClusterConfig.NodeAddrs form (whitespace trimmed, empty elements
// dropped).
func SplitNodeAddrs(list string) []string { return kvstore.SplitNodeAddrs(list) }

// DefaultCostModel returns the Cassandra-calibrated cost model (see
// internal/kvstore).
func DefaultCostModel() CostModel { return kvstore.DefaultCostModel() }

// Partitioning algorithms for Config.Partitioner.

// Partitioner is a chunking algorithm.
type Partitioner = partition.Algorithm

// BottomUp returns the paper's Bottom-Up tree partitioner (§3.2), the
// default and uniformly strongest choice. beta bounds the per-subtree set
// count (0 = unlimited).
func BottomUp(beta int) Partitioner { return partition.BottomUp{Beta: beta} }

// Shingle returns the min-hash partitioner (§3.1).
func Shingle(seed int64) Partitioner { return partition.Shingle{Seed: seed} }

// DepthFirst returns the greedy DFS traversal partitioner (§3.3).
func DepthFirst() Partitioner { return partition.DepthFirst{} }

// BreadthFirst returns the greedy BFS traversal partitioner (§3.3).
func BreadthFirst() Partitioner { return partition.BreadthFirst{} }
