package rstore_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"rstore"
)

// TestDisklogStoreReopen is the durability acceptance test at the library
// level: a store committed on the disklog backend, closed, and reopened from
// the same data directory must return identical results for every version,
// record, and history query.
func TestDisklogStoreReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := rstore.Config{Engine: rstore.EngineDisklog, DataDir: dir, BatchSize: 2}

	st, err := rstore.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc := func(i, rev int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf(`{"doc":%d,"rev":%d}`, i, rev)), 20)
	}
	v0, err := st.Commit(context.Background(), rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{
		"doc-0": doc(0, 0), "doc-1": doc(1, 0), "doc-2": doc(2, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := st.Commit(context.Background(), v0, rstore.Change{Puts: map[rstore.Key][]byte{
		"doc-1": doc(1, 1), "doc-3": doc(3, 1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := st.Commit(context.Background(), v1, rstore.Change{
		Puts:    map[rstore.Key][]byte{"doc-0": doc(0, 2)},
		Deletes: []rstore.Key{"doc-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A branch off v0 exercises the non-linear graph on reload.
	vb, err := st.Commit(context.Background(), v0, rstore.Change{Puts: map[rstore.Key][]byte{
		"doc-9": doc(9, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetBranch(context.Background(), "dev", vb); err != nil {
		t.Fatal(err)
	}
	if err := st.SetBranch(context.Background(), "main", v2); err != nil {
		t.Fatal(err)
	}

	type versionState map[rstore.Key]string
	snapshot := func(s *rstore.Store) map[rstore.VersionID]versionState {
		out := make(map[rstore.VersionID]versionState)
		for _, v := range []rstore.VersionID{v0, v1, v2, vb} {
			recs, _, err := s.GetVersionAll(context.Background(), v)
			if err != nil {
				t.Fatalf("GetVersion(%d): %v", v, err)
			}
			vs := versionState{}
			for _, r := range recs {
				vs[r.CK.Key] = string(r.Value)
			}
			out[v] = vs
		}
		return out
	}
	before := snapshot(st)
	histBefore, _, err := st.GetHistoryAll(context.Background(), "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The store is closed: its private cluster's files are released.
	if _, err := st.Commit(context.Background(), v2, rstore.Change{}); !errors.Is(err, rstore.ErrClosed) {
		t.Fatalf("commit on closed store: %v", err)
	}

	re, err := rstore.Load(context.Background(), rstore.Config{Engine: rstore.EngineDisklog, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	after := snapshot(re)
	for v, want := range before {
		got := after[v]
		if len(got) != len(want) {
			t.Fatalf("version %d: %d records after reopen, want %d", v, len(got), len(want))
		}
		for k, val := range want {
			if got[k] != val {
				t.Fatalf("version %d key %s changed across reopen", v, k)
			}
		}
	}
	histAfter, _, err := re.GetHistoryAll(context.Background(), "doc-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(histAfter) != len(histBefore) {
		t.Fatalf("history %d entries after reopen, want %d", len(histAfter), len(histBefore))
	}
	for i := range histBefore {
		if histBefore[i].CK != histAfter[i].CK || !bytes.Equal(histBefore[i].Value, histAfter[i].Value) {
			t.Fatalf("history entry %d differs after reopen", i)
		}
	}
	for _, b := range []string{"main", "dev"} {
		want, _ := st.Tip(b)
		got, err := re.Tip(b)
		if err != nil || got != want {
			t.Fatalf("branch %s = %d, %v; want %d", b, got, err, want)
		}
	}

	// And the reopened store keeps working: new commits land durably too.
	v3, err := re.Commit(context.Background(), v2, rstore.Change{Puts: map[rstore.Key][]byte{"doc-4": doc(4, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := rstore.Load(context.Background(), rstore.Config{Engine: rstore.EngineDisklog, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	rec, _, err := re2.GetRecord(context.Background(), "doc-4", v3)
	if err != nil || !bytes.Equal(rec.Value, doc(4, 3)) {
		t.Fatalf("doc-4@v3 after second reopen: %v", err)
	}
}

// TestLoadMissingDisklogStore: loading an empty data directory fails with
// ErrNotFound rather than fabricating an empty store.
func TestLoadMissingDisklogStore(t *testing.T) {
	_, err := rstore.Load(context.Background(), rstore.Config{Engine: rstore.EngineDisklog, DataDir: t.TempDir()})
	if !errors.Is(err, rstore.ErrNotFound) {
		t.Fatalf("load of empty dir: %v", err)
	}
}
