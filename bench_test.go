package rstore_test

// Benchmark harness: one testing.B benchmark per paper table/figure (each
// regenerates the artifact at quick scale; run cmd/rstore-bench for readable
// tables and -scale full for heavier datasets), plus micro-benchmarks of the
// engine's hot paths.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig8 -v        # print the regenerated table

import (
	"context"
	"fmt"
	"testing"

	"rstore"
	"rstore/internal/bench"
	"rstore/internal/corpus"
	"rstore/internal/partition"
	"rstore/internal/subchunk"
	"rstore/internal/workload"
)

// runExperiment executes one paper artifact per iteration; with -v the
// first iteration's tables are printed.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Quick()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				t.Fprint(benchWriter{b})
			}
		}
	}
}

type benchWriter struct{ b *testing.B }

func (w benchWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B)         { runExperiment(b, "table1") }
func BenchmarkTableChunkSize(b *testing.B) { runExperiment(b, "table-chunksize") }
func BenchmarkTable2Gen(b *testing.B)      { runExperiment(b, "table2") }
func BenchmarkFig8(b *testing.B)           { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)          { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)          { runExperiment(b, "fig13") }

// --- engine micro-benchmarks ---

func benchCorpus(b *testing.B, versions, records int) *corpus.Corpus {
	b.Helper()
	c, err := workload.Generate(workload.Spec{
		Name: "bench", Versions: versions, AvgDepth: float64(versions) / 4,
		RecordsPerVersion: records, UpdatePct: 0.10,
		Update: workload.RandomUpdate, RecordSize: 256, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkPartition measures each algorithm's partitioning throughput.
func BenchmarkPartition(b *testing.B) {
	c := benchCorpus(b, 200, 500)
	in, err := partition.NewInputFromCorpus(c, 16<<10)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []partition.Algorithm{
		partition.BottomUp{}, partition.BottomUp{Beta: 20},
		partition.Shingle{Seed: 1}, partition.DepthFirst{}, partition.BreadthFirst{},
	} {
		name := algo.Name()
		if bu, ok := algo.(partition.BottomUp); ok && bu.Beta > 0 {
			name = fmt.Sprintf("%s-beta%d", name, bu.Beta)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := algo.Partition(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubchunkBuild measures Algorithm 5 + tree transformation.
func BenchmarkSubchunkBuild(b *testing.B) {
	c := benchCorpus(b, 100, 300)
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := subchunk.Build(c, k, 16<<10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCommit measures online ingest throughput (delta store writes +
// periodic batch flushes).
func BenchmarkCommit(b *testing.B) {
	st, err := rstore.Open(context.Background(), rstore.Config{ChunkCapacity: 64 << 10, BatchSize: 32})
	if err != nil {
		b.Fatal(err)
	}
	parent, err := st.Commit(context.Background(), rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{
		"seed": []byte("s"),
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := rstore.Change{Puts: map[rstore.Key][]byte{
			rstore.Key(fmt.Sprintf("k%06d", i%1000)): []byte(fmt.Sprintf(`{"i":%d}`, i)),
		}}
		v, err := st.Commit(context.Background(), parent, ch)
		if err != nil {
			b.Fatal(err)
		}
		parent = v
	}
}

// BenchmarkGetVersion / BenchmarkGetRecord / BenchmarkGetHistory measure
// the three query paths on a materialized store.
func queryBenchStore(b *testing.B) (*rstore.Store, *corpus.Corpus) {
	b.Helper()
	c := benchCorpus(b, 150, 400)
	st, err := rstore.Open(context.Background(), rstore.Config{ChunkCapacity: 16 << 10})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.BulkLoad(context.Background(), c); err != nil {
		b.Fatal(err)
	}
	return st, c
}

func BenchmarkGetVersion(b *testing.B) {
	st, c := queryBenchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.GetVersionAll(context.Background(), rstore.VersionID(i%c.NumVersions())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetRecord(b *testing.B) {
	st, c := queryBenchStore(b)
	keys := c.Keys()
	last := rstore.VersionID(c.NumVersions() - 1)
	members, err := c.Members(last)
	if err != nil {
		b.Fatal(err)
	}
	liveKeys := make([]rstore.Key, 0, len(members))
	for _, id := range members {
		liveKeys = append(liveKeys, c.Record(id).CK.Key)
	}
	_ = keys
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.GetRecord(context.Background(), liveKeys[i%len(liveKeys)], last); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetHistory(b *testing.B) {
	st, c := queryBenchStore(b)
	keys := c.Keys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.GetHistoryAll(context.Background(), keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlushBatch measures one online partitioning batch end to end.
func BenchmarkFlushBatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := rstore.Open(context.Background(), rstore.Config{ChunkCapacity: 32 << 10})
		if err != nil {
			b.Fatal(err)
		}
		parent := rstore.NoParent
		for v := 0; v < 32; v++ {
			ch := rstore.Change{Puts: map[rstore.Key][]byte{}}
			for r := 0; r < 32; r++ {
				ch.Puts[rstore.Key(fmt.Sprintf("k%02d-%02d", v, r))] = []byte(`{"x":1}`)
			}
			parent, err = st.Commit(context.Background(), parent, ch)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := st.Flush(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
